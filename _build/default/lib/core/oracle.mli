(** The expert-validation oracle: the deterministic stand-in for the
    paper's manual pass (§5.7, a graduate student classifying the 3,146
    model-recommended SCI in five hours). An invariant is ruled a false
    positive when it pins incidental corpus data — a specific live
    register's value, an inter-register coincidence, an ordering or value
    set over live data — and plausible when it only constrains structural
    state: control flow, the exception machinery, privilege, instruction
    identity, operand/bus relations, the zero and link registers, the
    compare-direction witnesses, or a register framed against its own
    orig(). *)

val structural_base : string -> bool
(** Is this variable base-name structural? *)

val var_plausible : Trace.Var.id -> bool

val self_frame : Invariant.Expr.t -> bool
(** [GPRn = orig(GPRn)]: structural for any register. *)

val const_plausible : int -> bool

val plausible : Invariant.Expr.t -> bool
(** The verdict: [true] survives expert validation. *)

val validate :
  Invariant.Expr.t list -> Invariant.Expr.t list * Invariant.Expr.t list
(** Partition into (surviving, false positives). *)
