(* Fault injection interface.

   The paper's phase 3 reproduces each published erratum "in an open source
   processor (in Verilog), creating a buggy processor" (§3.3). Our analogue:
   a fault is a set of hooks that perturb the ISA-level semantics at well
   defined points of [Machine.step]. The clean processor runs with [none];
   a buggy processor runs with the hooks of one (or more) bugs installed.

   Hooks receive enough context to express every bug in Table 1 and the
   held-out AMD-style errata of §5.6. Unused hooks are identities. *)

type exn_kind = Isa.Spr.Vector.kind

type fetch_ctx = {
  fetch_pc : int;
  (* Previously retired instruction, if any: several errata are triggered by
     an instruction sequence (LSU stall, l.macrc after l.mac, ...). *)
  prev_insn : Isa.Insn.t option;
  prev_word : int;
}

type exn_ctx = {
  kind : exn_kind;
  faulting_pc : int;       (* address of the instruction raising *)
  next_pc : int;           (* address of the next unexecuted instruction *)
  in_delay_slot : bool;
  branch_pc : int;         (* address of the branch when in a delay slot *)
}

type t = {
  name : string;
  (* Corrupt the fetched instruction word. *)
  on_fetch : fetch_ctx -> int -> int;
  (* Replace the decoded instruction (e.g. treat it as a nop). *)
  on_decode : Isa.Insn.t -> Isa.Insn.t;
  (* Override an ALU/extend result. *)
  on_alu : Isa.Insn.t -> int -> int;
  (* Override a set-flag comparison result. *)
  on_compare : Isa.Insn.sf_op -> a:int -> b:int -> bool -> bool;
  (* Perturb a computed load/store effective address. *)
  on_eff_addr : Isa.Insn.t -> int -> int;
  (* Corrupt a loaded value (after extension). [addr] is the effective
     address, [raw] the unextended memory data. *)
  on_load : Isa.Insn.t -> addr:int -> raw:int -> int -> int;
  (* Corrupt a stored value. [exec_pc] allows region-dependent bugs. *)
  on_store : Isa.Insn.t -> addr:int -> exec_pc:int -> int -> int;
  (* Corrupt the value written back to a GPR (including the link
     register written by l.jal / l.jalr). *)
  on_writeback : Isa.Insn.t -> reg:int -> pc:int -> int -> int;
  (* Allow architectural zero register writes (bug b10). *)
  allow_gpr0_write : bool;
  (* Turn an l.mtspr into a no-op for the given SPR address (bug b12). *)
  mtspr_is_nop : spr_addr:int -> bool;
  (* Suppress an exception entirely: the instruction completes as if the
     exception had not been requested (bug b8's exploit face). *)
  suppress_exception : exn_ctx -> prev:Isa.Insn.t option -> bool;
  (* Corrupt the EPCR value saved on exception entry. *)
  on_exception_epcr : exn_ctx -> int -> int;
  (* Corrupt the SR value installed on exception entry (after the
     architectural SM/IEE/TEE/DSX updates). *)
  on_exception_sr : exn_ctx -> int -> int;
  (* Corrupt the vector address control transfers to. *)
  on_exception_vector : exn_ctx -> int -> int;
  (* Corrupt the SR restored by l.rfe. *)
  on_rfe_sr : int -> int;
  (* Corrupt the PC restored by l.rfe. *)
  on_rfe_pc : int -> int;
  (* b1: an l.sys in a delay slot loops instead of vectoring. *)
  syscall_in_delay_slot_loops : bool;
  (* b2: l.macrc immediately after l.mac wedges the pipeline. *)
  macrc_after_mac_stalls : bool;
  (* b17: a store immediately after a load clobbers the load's destination
     register with the store data. Returns the GPR index to clobber. *)
  store_after_load_clobbers : prev:Isa.Insn.t option -> Isa.Insn.t -> int option;
}

let none = {
  name = "none";
  on_fetch = (fun _ w -> w);
  on_decode = (fun i -> i);
  on_alu = (fun _ r -> r);
  on_compare = (fun _ ~a:_ ~b:_ r -> r);
  on_eff_addr = (fun _ a -> a);
  on_load = (fun _ ~addr:_ ~raw:_ v -> v);
  on_store = (fun _ ~addr:_ ~exec_pc:_ v -> v);
  on_writeback = (fun _ ~reg:_ ~pc:_ v -> v);
  allow_gpr0_write = false;
  mtspr_is_nop = (fun ~spr_addr:_ -> false);
  suppress_exception = (fun _ ~prev:_ -> false);
  on_exception_epcr = (fun _ v -> v);
  on_exception_sr = (fun _ v -> v);
  on_exception_vector = (fun _ v -> v);
  on_rfe_sr = (fun v -> v);
  on_rfe_pc = (fun v -> v);
  syscall_in_delay_slot_loops = false;
  macrc_after_mac_stalls = false;
  store_after_load_clobbers = (fun ~prev:_ _ -> None);
}

(* Compose two faults; [a]'s hooks run first (inner), then [b]'s. Used when
   a processor carries several injected bugs at once (§5.6 random-split
   experiment installs one bug at a time, but composition keeps the
   interface closed). *)
let compose a b = {
  name = a.name ^ "+" ^ b.name;
  on_fetch = (fun ctx w -> b.on_fetch ctx (a.on_fetch ctx w));
  on_decode = (fun i -> b.on_decode (a.on_decode i));
  on_alu = (fun i r -> b.on_alu i (a.on_alu i r));
  on_compare = (fun op ~a:x ~b:y r -> b.on_compare op ~a:x ~b:y (a.on_compare op ~a:x ~b:y r));
  on_eff_addr = (fun i ad -> b.on_eff_addr i (a.on_eff_addr i ad));
  on_load = (fun i ~addr ~raw v -> b.on_load i ~addr ~raw (a.on_load i ~addr ~raw v));
  on_store = (fun i ~addr ~exec_pc v -> b.on_store i ~addr ~exec_pc (a.on_store i ~addr ~exec_pc v));
  on_writeback = (fun i ~reg ~pc v -> b.on_writeback i ~reg ~pc (a.on_writeback i ~reg ~pc v));
  allow_gpr0_write = a.allow_gpr0_write || b.allow_gpr0_write;
  mtspr_is_nop = (fun ~spr_addr -> a.mtspr_is_nop ~spr_addr || b.mtspr_is_nop ~spr_addr);
  suppress_exception = (fun c ~prev -> a.suppress_exception c ~prev || b.suppress_exception c ~prev);
  on_exception_epcr = (fun c v -> b.on_exception_epcr c (a.on_exception_epcr c v));
  on_exception_sr = (fun c v -> b.on_exception_sr c (a.on_exception_sr c v));
  on_exception_vector = (fun c v -> b.on_exception_vector c (a.on_exception_vector c v));
  on_rfe_sr = (fun v -> b.on_rfe_sr (a.on_rfe_sr v));
  on_rfe_pc = (fun v -> b.on_rfe_pc (a.on_rfe_pc v));
  syscall_in_delay_slot_loops = a.syscall_in_delay_slot_loops || b.syscall_in_delay_slot_loops;
  macrc_after_mac_stalls = a.macrc_after_mac_stalls || b.macrc_after_mac_stalls;
  store_after_load_clobbers = (fun ~prev i ->
    match a.store_after_load_clobbers ~prev i with
    | Some r -> Some r
    | None -> b.store_after_load_clobbers ~prev i);
}
