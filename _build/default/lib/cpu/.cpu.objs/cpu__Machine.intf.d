lib/cpu/machine.mli: Fault Isa Memory
