lib/cpu/fault.ml: Isa
