lib/cpu/memory.mli:
