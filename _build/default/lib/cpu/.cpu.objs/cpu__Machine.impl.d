lib/cpu/machine.ml: Array Code Fault Insn Int64 Isa Memory Spr Util
