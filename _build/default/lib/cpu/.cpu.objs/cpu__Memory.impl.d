lib/cpu/memory.ml: Bytes Char List
