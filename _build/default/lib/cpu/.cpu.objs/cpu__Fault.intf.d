lib/cpu/fault.mli: Isa
