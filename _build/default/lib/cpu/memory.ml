(* Flat big-endian memory with two regions mirroring the OR1200 SoC used in
   the paper's evaluation platform: on-chip SRAM at the bottom of the address
   space and SDRAM above it. The region distinction matters only to bug b14
   ("byte and half-word write to SRAM failure when executing from SDRAM"). *)

type t = { data : Bytes.t; size : int }

let sram_base = 0x0000_0000
let sdram_base = 0x0010_0000
let default_size = 0x0020_0000 (* 2 MiB *)

type region = Sram | Sdram

let region_of addr = if addr >= sdram_base then Sdram else Sram

let create ?(size = default_size) () =
  { data = Bytes.make size '\000'; size }

let in_bounds t addr width = addr >= 0 && addr + width <= t.size

exception Bus_error of int

let check t addr width =
  if not (in_bounds t addr width) then raise (Bus_error addr)

let read8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let write8 t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let read16 t addr =
  check t addr 2;
  (read8 t addr lsl 8) lor read8 t (addr + 1)

let write16 t addr v =
  check t addr 2;
  write8 t addr (v lsr 8);
  write8 t (addr + 1) v

let read32 t addr =
  check t addr 4;
  (read8 t addr lsl 24) lor (read8 t (addr + 1) lsl 16)
  lor (read8 t (addr + 2) lsl 8) lor read8 t (addr + 3)

let write32 t addr v =
  check t addr 4;
  write8 t addr (v lsr 24);
  write8 t (addr + 1) (v lsr 16);
  write8 t (addr + 2) (v lsr 8);
  write8 t (addr + 3) v

(* Read a word for tracing without raising: out-of-bounds reads as 0. *)
let peek32 t addr =
  if in_bounds t addr 4 && addr land 3 = 0 then read32 t addr else 0

let load_image t image =
  List.iter (fun (addr, word) -> write32 t addr word) image

let size t = t.size
