(** Fault injection: the "buggy processor" of §3.3.

    A fault is a set of hooks that perturb the ISA-level semantics at well
    defined points of {!Machine.step}. The clean processor runs with
    {!none}; reproduced errata install their own hooks (see [Bugs]).
    Unused hooks are identities. *)

type exn_kind = Isa.Spr.Vector.kind

type fetch_ctx = {
  fetch_pc : int;
  prev_insn : Isa.Insn.t option;
      (** previously retired instruction: sequence-triggered errata *)
  prev_word : int;
}

type exn_ctx = {
  kind : exn_kind;
  faulting_pc : int;   (** address of the instruction raising *)
  next_pc : int;       (** address of the next unexecuted instruction *)
  in_delay_slot : bool;
  branch_pc : int;     (** address of the branch when in a delay slot *)
}

type t = {
  name : string;
  on_fetch : fetch_ctx -> int -> int;
      (** corrupt the fetched instruction word *)
  on_decode : Isa.Insn.t -> Isa.Insn.t;
      (** replace the decoded instruction *)
  on_alu : Isa.Insn.t -> int -> int;
      (** override an ALU/extend result *)
  on_compare : Isa.Insn.sf_op -> a:int -> b:int -> bool -> bool;
      (** override a set-flag comparison *)
  on_eff_addr : Isa.Insn.t -> int -> int;
      (** perturb a load/store effective address *)
  on_load : Isa.Insn.t -> addr:int -> raw:int -> int -> int;
      (** corrupt a loaded value (after extension); [raw] is the
          unextended memory datum *)
  on_store : Isa.Insn.t -> addr:int -> exec_pc:int -> int -> int;
      (** corrupt a stored value; [exec_pc] allows region-dependent bugs *)
  on_writeback : Isa.Insn.t -> reg:int -> pc:int -> int -> int;
      (** corrupt a GPR writeback, including l.jal's link value *)
  allow_gpr0_write : bool;
      (** bug b10: the architectural zero register becomes writable *)
  mtspr_is_nop : spr_addr:int -> bool;
      (** bug b12: l.mtspr to the given SPR silently dropped *)
  suppress_exception : exn_ctx -> prev:Isa.Insn.t option -> bool;
      (** drop a requested exception entirely (bug b8's exploit face) *)
  on_exception_epcr : exn_ctx -> int -> int;
      (** corrupt the EPCR saved on exception entry *)
  on_exception_sr : exn_ctx -> int -> int;
      (** corrupt the SR installed on exception entry *)
  on_exception_vector : exn_ctx -> int -> int;
      (** corrupt the vector address *)
  on_rfe_sr : int -> int;
      (** corrupt the SR restored by l.rfe *)
  on_rfe_pc : int -> int;
      (** corrupt the PC restored by l.rfe *)
  syscall_in_delay_slot_loops : bool;
      (** bug b1 *)
  macrc_after_mac_stalls : bool;
      (** bug b2 *)
  store_after_load_clobbers : prev:Isa.Insn.t option -> Isa.Insn.t -> int option;
      (** bug b17: the GPR to clobber with the store data *)
}

val none : t
(** The identity fault: the clean processor. *)

val compose : t -> t -> t
(** [compose a b] runs [a]'s hooks first (inner), then [b]'s; boolean
    switches are or-combined. *)
