(** Flat big-endian memory with two regions mirroring the OR1200 SoC of
    the paper's evaluation platform: on-chip SRAM at the bottom of the
    address space and SDRAM above it (the distinction matters to bug
    b14). *)

type t

val sram_base : int
val sdram_base : int
val default_size : int

type region = Sram | Sdram

val region_of : int -> region

val create : ?size:int -> unit -> t
(** Zero-filled memory; [size] defaults to 2 MiB. *)

exception Bus_error of int
(** Raised with the offending address on out-of-bounds access. *)

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val write16 : t -> int -> int -> unit
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit

val peek32 : t -> int -> int
(** Non-raising word read for tracing: out-of-bounds or misaligned
    addresses read as 0. *)

val load_image : t -> (int * int) list -> unit
(** Write an assembled [(address, word)] image. *)

val size : t -> int
