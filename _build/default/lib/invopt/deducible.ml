(* Deducible removal (§3.2.2).

   Invariants over transitive operators that follow from other invariants
   are removed by computing a transitive reduction. Invariants are first
   canonicalised to lhs OP rhs with OP in {>, >=, =}; for each program
   point a graph over canonical side-strings is built, and:

   - the equality relation keeps one spanning forest per connected
     component (a transitive reduction of an equivalence relation);
   - the order relation drops an edge u -> v when another u ~> v path
     derives it (a strict conclusion needs at least one strict edge on
     the path). *)

module Expr = Invariant.Expr

type edge_kind = Strict | Nonstrict

(* Canonical (kind, lhs, rhs) of an order invariant: lhs OP rhs. *)
let order_edge (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Gt, l, r) -> Some (Strict, Expr.canon_term l, Expr.canon_term r)
  | Expr.Cmp (Expr.Ge, l, r) -> Some (Nonstrict, Expr.canon_term l, Expr.canon_term r)
  | Expr.Cmp (Expr.Lt, l, r) -> Some (Strict, Expr.canon_term r, Expr.canon_term l)
  | Expr.Cmp (Expr.Le, l, r) -> Some (Nonstrict, Expr.canon_term r, Expr.canon_term l)
  | Expr.Cmp ((Expr.Eq | Expr.Ne), _, _) | Expr.In _ -> None

let eq_edge (inv : Expr.t) =
  match inv.Expr.body with
  | Expr.Cmp (Expr.Eq, l, r) -> Some (Expr.canon_term l, Expr.canon_term r)
  | Expr.Cmp (_, _, _) | Expr.In _ -> None

module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find t x =
    match Hashtbl.find_opt t x with
    | None -> x
    | Some p ->
      let root = find t p in
      if root <> p then Hashtbl.replace t x root;
      root

  (* Returns true when the union merged two distinct components. *)
  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin Hashtbl.replace t ra rb; true end
end

(* Keep the order edge (kind, u, v) only if no alternative derivation
   u ~> v exists among [edges] (excluding the edge itself). A strict edge
   is derivable from a path containing at least one strict edge; a
   non-strict edge from any path of length >= 2, or a strict path of any
   length. *)
let order_edge_derivable edges (kind, u, v) =
  (* adjacency: node -> (next, strict?) list *)
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (k, a, b) ->
       if not (k = kind && a = u && b = v) then
         Hashtbl.replace adj a ((b, k) :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    edges;
  (* DFS over (node, saw_strict) states. *)
  let visited = Hashtbl.create 64 in
  let rec dfs node saw_strict length =
    if node = v
    && length >= 1
    && (match kind with Strict -> saw_strict | Nonstrict -> true)
    then true
    else begin
      let key = (node, saw_strict) in
      if Hashtbl.mem visited key then false
      else begin
        Hashtbl.add visited key ();
        List.exists
          (fun (next, k) -> dfs next (saw_strict || k = Strict) (length + 1))
          (Option.value ~default:[] (Hashtbl.find_opt adj node))
      end
    end
  in
  (* A single remaining parallel edge (same endpoints, adequate strength)
     also derives this one, which the generic DFS covers via length 1. *)
  dfs u false 0

let run_point invs =
  (* Partition invariants into order, equality and other. *)
  let order = ref [] and keep = ref [] in
  let eq_uf = Uf.create () in
  let classified =
    List.map
      (fun inv ->
         match order_edge inv with
         | Some e -> `Order (inv, e)
         | None ->
           (match eq_edge inv with
            | Some (l, r) -> `Eq (inv, l, r)
            | None -> `Other inv))
      invs
  in
  let order_edges =
    List.filter_map (function `Order (_, e) -> Some e | `Eq _ | `Other _ -> None)
      classified
  in
  List.iter
    (function
      | `Other inv -> keep := inv :: !keep
      | `Eq (inv, l, r) ->
        (* Keep an equality only when it connects two new components:
           transitive reduction of the equivalence relation. *)
        if Uf.union eq_uf l r then keep := inv :: !keep
      | `Order (inv, e) -> order := (inv, e) :: !order)
    classified;
  List.iter
    (fun (inv, e) ->
       if not (order_edge_derivable order_edges e) then keep := inv :: !keep)
    (List.rev !order);
  List.rev !keep

let run invariants =
  let by_point = Hashtbl.create 97 in
  let point_order = ref [] in
  List.iter
    (fun (inv : Expr.t) ->
       (match Hashtbl.find_opt by_point inv.Expr.point with
        | None ->
          point_order := inv.Expr.point :: !point_order;
          Hashtbl.add by_point inv.Expr.point [ inv ]
        | Some invs -> Hashtbl.replace by_point inv.Expr.point (inv :: invs)))
    invariants;
  List.concat_map
    (fun point -> run_point (List.rev (Hashtbl.find by_point point)))
    (List.rev !point_order)
  |> List.sort Expr.compare
