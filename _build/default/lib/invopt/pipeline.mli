(** The full §3.2 optimisation pipeline with Table 2 accounting:
    raw -> constant propagation -> deducible removal -> equivalence
    removal. *)

type stage_stats = {
  stage : string;
  invariants : int;
  variables : int;  (** total variable occurrences *)
}

val measure : string -> Invariant.Expr.t list -> stage_stats

type result = {
  optimized : Invariant.Expr.t list;
  stages : stage_stats list;  (** raw; after CP; after DR; after ER *)
}

val optimize : Invariant.Expr.t list -> result
