lib/invopt/pipeline.mli: Invariant
