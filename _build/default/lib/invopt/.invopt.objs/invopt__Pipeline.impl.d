lib/invopt/pipeline.ml: Constprop Deducible Equivalence Invariant List
