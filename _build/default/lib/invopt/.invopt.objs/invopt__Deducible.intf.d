lib/invopt/deducible.mli: Invariant
