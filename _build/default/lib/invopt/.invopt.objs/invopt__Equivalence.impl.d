lib/invopt/equivalence.ml: Hashtbl Invariant List
