lib/invopt/constprop.ml: Array Hashtbl Invariant List Option Trace Util
