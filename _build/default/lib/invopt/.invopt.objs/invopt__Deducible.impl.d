lib/invopt/deducible.ml: Hashtbl Invariant List Option
