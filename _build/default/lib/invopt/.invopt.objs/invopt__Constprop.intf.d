lib/invopt/constprop.mli: Invariant
