lib/invopt/equivalence.mli: Invariant
