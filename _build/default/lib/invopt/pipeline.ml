(* The full §3.2 optimisation pipeline with the Table 2 accounting:
   raw -> constant propagation -> deducible removal -> equivalence
   removal, tracking the number of invariants and the total number of
   variable occurrences at each stage. *)

module Expr = Invariant.Expr

type stage_stats = {
  stage : string;
  invariants : int;
  variables : int;
}

let measure stage invs = {
  stage;
  invariants = List.length invs;
  variables = List.fold_left (fun acc inv -> acc + Expr.var_occurrences inv) 0 invs;
}

type result = {
  optimized : Expr.t list;
  stages : stage_stats list; (* raw; after CP; after DR; after ER *)
}

let optimize invariants =
  let raw_stats = measure "raw" invariants in
  let after_cp = Constprop.run invariants in
  let cp_stats = measure "after CP" after_cp in
  let after_dr = Deducible.run after_cp in
  let dr_stats = measure "after DR" after_dr in
  let after_er = Equivalence.run after_dr in
  let er_stats = measure "after ER" after_er in
  { optimized = after_er;
    stages = [ raw_stats; cp_stats; dr_stats; er_stats ] }
