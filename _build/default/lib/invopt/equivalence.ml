(* Equivalence removal (§3.2.3).

   Logically equivalent invariants are clustered by their canonical form
   (the same form used by the deducible-removal pass) and one representative
   per class is kept. *)

module Expr = Invariant.Expr

let run invariants =
  let seen = Hashtbl.create 4096 in
  List.filter
    (fun inv ->
       let key = Expr.canonical inv in
       if Hashtbl.mem seen key then false
       else begin
         Hashtbl.add seen key ();
         true
       end)
    invariants
