(** Constant propagation (§3.2.1).

    Equality-to-constant invariants ([A = 0]) substitute constants into
    the other invariants of the same program point, iterating until no new
    equality-to-constant appears. The invariant count is unchanged
    (cf. Table 2); variable occurrences drop. *)

val run : Invariant.Expr.t list -> Invariant.Expr.t list
