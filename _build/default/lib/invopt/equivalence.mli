(** Equivalence removal (§3.2.3): logically equivalent invariants are
    clustered by canonical form and one representative per class kept. *)

val run : Invariant.Expr.t list -> Invariant.Expr.t list
