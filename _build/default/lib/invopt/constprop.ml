(* Constant propagation (§3.2.1).

   Equality-to-constant invariants (A = 0) are used to substitute constants
   into the other invariants of the same program point, iteratively: any new
   equality-to-constant produced by a substitution feeds later rounds, as in
   the compiler optimisation. The invariant *count* is unchanged (cf.
   Table 2); the number of variable occurrences drops. *)

module Expr = Invariant.Expr

(* The variable -> constant map of one program point. *)
type env = (Trace.Var.id, int) Hashtbl.t

let const_of_body = function
  | Expr.Cmp (Expr.Eq, Expr.V id, Expr.Imm c)
  | Expr.Cmp (Expr.Eq, Expr.Imm c, Expr.V id) -> Some (id, c)
  | Expr.Cmp (_, _, _) | Expr.In (_, _) -> None

let subst_term env term =
  let lookup id = Hashtbl.find_opt env id in
  match term with
  | Expr.V id ->
    (match lookup id with Some c -> Expr.Imm c | None -> term)
  | Expr.Imm _ -> term
  | Expr.Mul (id, k) ->
    (match lookup id with Some c -> Expr.Imm (Util.U32.mul c k) | None -> term)
  | Expr.Mod (id, k) ->
    (match lookup id with
     | Some c -> Expr.Imm (if k = 0 then 0 else c mod k)
     | None -> term)
  | Expr.Notv id ->
    (match lookup id with Some c -> Expr.Imm (Util.U32.lognot c) | None -> term)
  | Expr.Bin (op, a, b) ->
    (match lookup a, lookup b with
     | Some ca, Some cb ->
       let v = match op with
         | Expr.Band -> ca land cb
         | Expr.Bor -> ca lor cb
         | Expr.Plus -> Util.U32.add ca cb
         | Expr.Minus -> Util.U32.signed (Util.U32.sub ca cb)
       in
       Expr.Imm v
     | _ -> term)

(* Rewrite "B - A = d" with A = c into "B = c + d" (and symmetric cases),
   so partial knowledge of a Bin operand is still exploited. *)
let simplify_body env body =
  let lookup id = Hashtbl.find_opt env id in
  match body with
  | Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, j, i), Expr.Imm d) ->
    (match lookup i, lookup j with
     | Some ci, None ->
       Expr.Cmp (Expr.Eq, Expr.V j, Expr.Imm (Util.U32.add ci (d land 0xFFFF_FFFF)))
     | None, Some cj ->
       Expr.Cmp (Expr.Eq, Expr.V i, Expr.Imm (Util.U32.sub cj (d land 0xFFFF_FFFF)))
     | _ ->
       Expr.Cmp (Expr.Eq, subst_term env (Expr.Bin (Expr.Minus, j, i)), Expr.Imm d))
  | Expr.Cmp (op, lhs, rhs) -> Expr.Cmp (op, subst_term env lhs, subst_term env rhs)
  | Expr.In (term, vs) -> Expr.In (subst_term env term, vs)

(* One program point's worth of invariants. *)
let run_point invs =
  let env : env = Hashtbl.create 32 in
  let bodies = Array.of_list invs in
  let changed = ref true in
  (* Seed the environment. *)
  Array.iter
    (fun (inv : Expr.t) ->
       match const_of_body inv.Expr.body with
       | Some (id, c) -> Hashtbl.replace env id c
       | None -> ())
    bodies;
  while !changed do
    changed := false;
    Array.iteri
      (fun k (inv : Expr.t) ->
         match const_of_body inv.Expr.body with
         | Some _ -> () (* defining invariants are kept as is *)
         | None ->
           let body' = simplify_body env inv.Expr.body in
           if body' <> inv.Expr.body then begin
             bodies.(k) <- { inv with Expr.body = body' };
             changed := true;
             (* A substitution may expose a new equality-to-constant. *)
             match const_of_body body' with
             | Some (id, c) when not (Hashtbl.mem env id) ->
               Hashtbl.replace env id c
             | _ -> ()
           end)
      bodies
  done;
  Array.to_list bodies

let run invariants =
  let by_point = Hashtbl.create 97 in
  List.iter
    (fun (inv : Expr.t) ->
       let existing =
         Option.value ~default:[] (Hashtbl.find_opt by_point inv.Expr.point)
       in
       Hashtbl.replace by_point inv.Expr.point (inv :: existing))
    invariants;
  Hashtbl.fold (fun _ invs acc -> run_point (List.rev invs) @ acc) by_point []
  |> List.sort Expr.compare
