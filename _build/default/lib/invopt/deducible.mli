(** Deducible removal (§3.2.2).

    Transitive-operator invariants derivable from others are removed:
    invariants are canonicalised to [lhs OP rhs] with OP in [{>, >=, =}],
    a graph over canonical side strings is built per program point, the
    order relation is transitively reduced (a strict conclusion needs at
    least one strict edge on the deriving path) and the equality relation
    keeps one spanning forest per connected component. *)

val run : Invariant.Expr.t list -> Invariant.Expr.t list
