(* The bug registry: every reproduced erratum actually perturbs the
   ISA-visible behaviour of its trigger (except the microarchitectural
   ones), and each fault matches its synopsis. *)

module M = Cpu.Machine
module Reg = Bugs.Registry

(* Trace digests of the trigger under the clean and the buggy processor. *)
let trace_digest ?(fault = Cpu.Fault.none) (t : Workloads.Rt.t) =
  let config = { Trace.Runner.default_config with max_steps = 4000 } in
  let acc = ref 0 and n = ref 0 in
  ignore
    (Trace.Runner.stream ~config ~fault ~tick_period:t.tick_period
       ~entry:t.entry
       ~observer:(fun r ->
           incr n;
           Array.iter (fun x -> acc := (!acc * 1000003) + x) r.Trace.Record.values)
       t.image);
  (!acc, !n)

let divergence_tests =
  List.map
    (fun (b : Reg.t) ->
       Alcotest.test_case b.id `Quick (fun () ->
           let clean = trace_digest b.trigger in
           let buggy = trace_digest ~fault:b.fault b.trigger in
           if b.isa_visible then
             Alcotest.(check bool)
               (b.id ^ " diverges at the ISA level") true (clean <> buggy)
           else
             Alcotest.(check bool)
               (b.id ^ " is ISA-invisible") true
               (b.id = "b2" || clean = buggy)))
    (Bugs.Table1.all @ Bugs.Amd_errata.all)

let clean_termination_tests =
  List.map
    (fun (b : Reg.t) ->
       Alcotest.test_case (b.id ^ "-clean") `Quick (fun () ->
           let config = { Trace.Runner.default_config with max_steps = 4000 } in
           let _, outcome =
             Trace.Runner.capture ~config ~tick_period:b.trigger.tick_period
               ~entry:b.trigger.entry b.trigger.image
           in
           Alcotest.(check bool) "clean trigger exits" true
             (outcome = `Halted M.Exit)))
    (Bugs.Table1.all @ Bugs.Amd_errata.all)

(* ---- spot checks on specific bug semantics ---- *)

let run_with bug_id insns regs =
  let b = Option.get (Bugs.Table1.by_id bug_id) in
  let items = List.map (fun i -> Isa.Asm.I i) insns @ [ Isa.Asm.I (Isa.Insn.Nop 1) ] in
  let image = Isa.Asm.assemble { Isa.Asm.origin = 0x2000; items } in
  let m = M.create ~fault:b.Reg.fault () in
  M.load_image m image;
  M.set_pc m 0x2000;
  List.iter (fun (r, v) -> m.M.gpr.(r) <- v) regs;
  ignore (M.run ~max_steps:100 ~observer:(fun _ -> ()) m);
  m

let test_b2_stalls () =
  let b = Option.get (Bugs.Table1.by_id "b2") in
  let items =
    List.map (fun i -> Isa.Asm.I i)
      Isa.Insn.[ Macc (Mac, 1, 2); Macrc 3; Nop 1 ]
  in
  let image = Isa.Asm.assemble { Isa.Asm.origin = 0x2000; items } in
  let m = M.create ~fault:b.Reg.fault () in
  M.load_image m image;
  M.set_pc m 0x2000;
  (match M.run ~max_steps:100 ~observer:(fun _ -> ()) m with
   | `Halted M.Stalled -> ()
   | _ -> Alcotest.fail "expected a stall")

let test_b3_extw_wrong () =
  let m = run_with "b3" Isa.Insn.[ Ext (Extws, 3, 1) ] [ (1, 0x0001_4678) ] in
  Alcotest.(check int) "extws truncated" 0x4678 m.M.gpr.(3)

let test_b6_compare_flip () =
  let m = run_with "b6" Isa.Insn.[ Setflag (Sfltu, 1, 2) ]
      [ (1, 0x8000_0000); (2, 1) ] in
  (* 0x80000000 <u 1 is false, but the MSBs differ so the bug flips it. *)
  Alcotest.(check int) "flag flipped" 1
    (Isa.Spr.Sr_bits.get m.M.sr Isa.Spr.Sr_bits.f)

let test_b6_same_msb_ok () =
  let m = run_with "b6" Isa.Insn.[ Setflag (Sfltu, 1, 2) ] [ (1, 3); (2, 7) ] in
  Alcotest.(check int) "correct when MSBs match" 1
    (Isa.Spr.Sr_bits.get m.M.sr Isa.Spr.Sr_bits.f)

let test_b10_gpr0 () =
  let m = run_with "b10" Isa.Insn.[ Alu (Add, 0, 1, 2) ] [ (1, 41); (2, 1) ] in
  Alcotest.(check int) "r0 poisoned" 42 m.M.gpr.(0)

let test_b12_mtspr_dropped () =
  let m = run_with "b12"
      Isa.Insn.[ Mtspr (0, 1, Isa.Spr.address Isa.Spr.Eear0) ] [ (1, 0xAA) ] in
  Alcotest.(check int) "EEAR write dropped" 0 m.M.eear

let test_b17_clobber () =
  let m = run_with "b17"
      Isa.Insn.[ Store (Sw, 0, 1, 2);    (* mem[0x8000] <- 77 *)
                 Load (Lwz, 5, 1, 0);    (* r5 <- 77 *)
                 Store (Sw, 4, 1, 6) ]   (* bug: r5 <- r6 *)
      [ (1, 0x8000); (2, 77); (6, 55) ] in
  Alcotest.(check int) "load result clobbered" 55 m.M.gpr.(5)

let test_registry_invariants () =
  let all = Bugs.Table1.all @ Bugs.Amd_errata.all in
  Alcotest.(check int) "17 Table 1 bugs" 17 (List.length Bugs.Table1.all);
  Alcotest.(check int) "14 held-out bugs" 14 (List.length Bugs.Amd_errata.all);
  let ids = List.map (fun b -> b.Reg.id) all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  let microarch = List.filter (fun b -> not b.Reg.isa_visible) all in
  Alcotest.(check int) "exactly 3 microarchitectural bugs" 3
    (List.length microarch);
  Alcotest.(check int) "random-split pool of 28" 28
    (List.length (List.filter (fun b -> b.Reg.isa_visible) all))

let test_funnel_counts () =
  Alcotest.(check int) "collected" 185 Reg.collected_bug_count;
  Alcotest.(check int) "security" 25 Reg.security_critical_count;
  Alcotest.(check int) "reproduced" 17 Reg.reproduced_count;
  Alcotest.(check int) "funnel consistent" Reg.security_critical_count
    (Reg.reproduced_count + Reg.not_reproducible_count)

let () =
  Alcotest.run "bugs"
    [ ("divergence", divergence_tests);
      ("clean-termination", clean_termination_tests);
      ("semantics",
       [ Alcotest.test_case "b2 stalls" `Quick test_b2_stalls;
         Alcotest.test_case "b3 extw" `Quick test_b3_extw_wrong;
         Alcotest.test_case "b6 flip" `Quick test_b6_compare_flip;
         Alcotest.test_case "b6 same msb" `Quick test_b6_same_msb_ok;
         Alcotest.test_case "b10 gpr0" `Quick test_b10_gpr0;
         Alcotest.test_case "b12 mtspr" `Quick test_b12_mtspr_dropped;
         Alcotest.test_case "b17 clobber" `Quick test_b17_clobber ]);
      ("registry",
       [ Alcotest.test_case "structure" `Quick test_registry_invariants;
         Alcotest.test_case "funnel" `Quick test_funnel_counts ]) ]
