(* Assertion synthesis (OVL templates), the runtime monitor, and the
   hardware cost model. *)

module Expr = Invariant.Expr
module Var = Trace.Var
module Ovl = Assertions.Ovl

let inv ?(point = "l.add") body = { Expr.point; body }
let v_post d = Expr.V (Var.post_id d)
let v_orig d = Expr.V (Var.orig_id d)

let record ?(point = "l.add") assignments =
  let values = Array.make Var.total 0 in
  List.iter (fun (id, v) -> values.(id) <- v) assignments;
  { Trace.Record.point; values; mask = Array.make Var.total true }

(* ---- template selection ---- *)

let test_edge_template () =
  let a = Ovl.of_invariant
      (inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0))) in
  Alcotest.(check bool) "edge" true (a.Ovl.template = Ovl.Edge);
  Alcotest.(check int) "no history" 0 (List.length a.Ovl.history_vars)

let test_next_template_for_orig () =
  (* The paper's example: SR = orig(ESR0) becomes next(..., 1). *)
  let a = Ovl.of_invariant
      (inv ~point:"l.rfe" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr))) in
  Alcotest.(check bool) "next 1" true (a.Ovl.template = Ovl.Next 1);
  Alcotest.(check int) "one holding register" 1 (List.length a.Ovl.history_vars);
  Alcotest.(check string) "ovl rendering"
    "assert_next(INSN = l.rfe, SR = orig(ESR0), 1)" (Ovl.to_ovl_string a)

let test_delta_template_for_bounds () =
  let a = Ovl.of_invariant
      (inv ~point:"l.sfltu"
         (Expr.Cmp (Expr.Ge, Expr.V (Var.insn_id Var.Prod_u), Expr.Imm 0))) in
  (match a.Ovl.template with
   | Ovl.Delta { low; _ } -> Alcotest.(check int) "lower bound" 0 low
   | _ -> Alcotest.fail "expected delta")

let test_battery_names_unique () =
  let invs =
    [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0));
      inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 9), v_orig (Var.Gpr 9))) ]
  in
  let battery = Ovl.of_invariants invs in
  let names = List.map (fun a -> a.Ovl.name) battery in
  Alcotest.(check int) "unique" 2 (List.length (List.sort_uniq compare names))

(* ---- monitor ---- *)

let test_monitor_fires_on_violation () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let trace =
    [ record [ (Var.post_id (Var.Gpr 0), 0) ];
      record [ (Var.post_id (Var.Gpr 0), 42) ];
      record [ (Var.post_id (Var.Gpr 0), 0) ] ]
  in
  let firings = Assertions.Monitor.run battery trace in
  Alcotest.(check int) "one firing" 1 (List.length firings);
  Alcotest.(check int) "at step 1" 1 (List.hd firings).Assertions.Monitor.step;
  Alcotest.(check bool) "detects" true (Assertions.Monitor.detects battery trace)

let test_monitor_silent_on_clean () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let trace = List.init 5 (fun _ -> record []) in
  Alcotest.(check bool) "silent" false (Assertions.Monitor.detects battery trace)

let test_monitor_point_scoping () =
  let battery =
    Ovl.of_invariants
      [ inv ~point:"l.sys" (Expr.Cmp (Expr.Eq, v_post Var.Pc, Expr.Imm 0xC00)) ]
  in
  let trace = [ record ~point:"l.add" [ (Var.post_id Var.Pc, 0x2004) ] ] in
  Alcotest.(check bool) "other points ignored" false
    (Assertions.Monitor.detects battery trace)

let test_fired_assertions_dedup () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let bad = record [ (Var.post_id (Var.Gpr 0), 9) ] in
  let fired = Assertions.Monitor.fired_assertions battery [ bad; bad; bad ] in
  Alcotest.(check int) "distinct assertions" 1 (List.length fired)

(* ---- cost model ---- *)

let test_cost_positive_and_monotone () =
  let simple =
    Ovl.of_invariant (inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)))
  in
  let complex =
    Ovl.of_invariant
      (inv (Expr.Cmp (Expr.Eq,
                      Expr.Bin (Expr.Minus, Var.post_id (Var.Gpr 9), Var.orig_id Var.Pc),
                      Expr.Imm 8)))
  in
  let cs = Assertions.Cost.assertion_cost simple in
  let cc = Assertions.Cost.assertion_cost complex in
  Alcotest.(check bool) "positive" true (cs.Assertions.Cost.luts > 0);
  Alcotest.(check bool) "adders and history cost more" true
    (cc.Assertions.Cost.luts > cs.Assertions.Cost.luts);
  Alcotest.(check bool) "history flip-flops" true (cc.Assertions.Cost.flipflops >= 32)

let test_battery_shares_history () =
  let i1 = inv (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) in
  let i2 = inv ~point:"l.sub" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) in
  let both = Assertions.Cost.battery_overhead (Ovl.of_invariants [ i1; i2 ]) in
  let one = Assertions.Cost.battery_overhead (Ovl.of_invariants [ i1 ]) in
  (* Shared ESR holding register: the second assertion adds comparator
     logic but no second 32-bit register. *)
  Alcotest.(check int) "flip-flops shared" one.Assertions.Cost.total_ffs
    both.Assertions.Cost.total_ffs;
  Alcotest.(check bool) "logic still grows" true
    (both.Assertions.Cost.total_luts > one.Assertions.Cost.total_luts)

let test_overhead_percentages () =
  let battery =
    Ovl.of_invariants [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let o = Assertions.Cost.battery_overhead battery in
  Alcotest.(check bool) "small battery is a small fraction" true
    (o.Assertions.Cost.lut_pct > 0.0 && o.Assertions.Cost.lut_pct < 2.0);
  Alcotest.(check (float 1e-9)) "no delay" 0.0 o.Assertions.Cost.delay_ns_added

(* ---- Verilog back end ---- *)

let test_verilog_structure () =
  let battery =
    Ovl.of_invariants
      [ inv ~point:"l.sys" (Expr.Cmp (Expr.Eq, v_post Var.Pc, Expr.Imm 0xC00));
        inv ~point:"l.rfe" (Expr.Cmp (Expr.Eq, v_post Var.Sr_full, v_orig Var.Esr)) ]
  in
  let v = Assertions.Verilog.emit battery in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let check_has sub = Alcotest.(check bool) sub true (contains v sub) in
  check_has "module scifinder_monitor";
  check_has "input wire valid";
  check_has "output wire any_fire";
  (* the syscall vector comparison and its opcode qualifier *)
  check_has "32'h00000C00";
  check_has "6'h08";
  (* the orig() operand gets a holding register *)
  check_has "ESR0_prev";
  check_has "ESR0_prev <= ESR0";
  check_has "endmodule"

let test_verilog_fire_polarity () =
  (* fire asserts the NEGATION of the invariant expression. *)
  let battery =
    Ovl.of_invariants
      [ inv (Expr.Cmp (Expr.Eq, v_post (Var.Gpr 0), Expr.Imm 0)) ]
  in
  let v = Assertions.Verilog.emit battery in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "negated body" true
    (contains v "!(GPR0 == 32'h00000000)")

let test_verilog_signed_diff () =
  let battery =
    Ovl.of_invariants
      [ inv ~point:"l.sfltu"
          (Expr.Cmp (Expr.Ge, Expr.V (Var.insn_id Var.Prod_u), Expr.Imm 0)) ]
  in
  let v = Assertions.Verilog.emit battery in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "signed comparison for Diff vars" true
    (contains v "$signed(PROD_U)")

let test_baseline_constants () =
  Alcotest.(check int) "baseline LUTs (Table 9)" 10073 Assertions.Cost.baseline_luts;
  Alcotest.(check (float 1e-9)) "baseline power" 3.24 Assertions.Cost.baseline_power_w;
  Alcotest.(check (float 1e-9)) "baseline delay" 19.1 Assertions.Cost.baseline_delay_ns

let () =
  Alcotest.run "assertions"
    [ ("templates",
       [ Alcotest.test_case "edge" `Quick test_edge_template;
         Alcotest.test_case "next for orig()" `Quick test_next_template_for_orig;
         Alcotest.test_case "delta bounds" `Quick test_delta_template_for_bounds;
         Alcotest.test_case "unique names" `Quick test_battery_names_unique ]);
      ("monitor",
       [ Alcotest.test_case "fires" `Quick test_monitor_fires_on_violation;
         Alcotest.test_case "silent" `Quick test_monitor_silent_on_clean;
         Alcotest.test_case "point scoping" `Quick test_monitor_point_scoping;
         Alcotest.test_case "dedup" `Quick test_fired_assertions_dedup ]);
      ("verilog",
       [ Alcotest.test_case "structure" `Quick test_verilog_structure;
         Alcotest.test_case "fire polarity" `Quick test_verilog_fire_polarity;
         Alcotest.test_case "signed diff" `Quick test_verilog_signed_diff ]);
      ("cost",
       [ Alcotest.test_case "monotone" `Quick test_cost_positive_and_monotone;
         Alcotest.test_case "history sharing" `Quick test_battery_shares_history;
         Alcotest.test_case "percentages" `Quick test_overhead_percentages;
         Alcotest.test_case "baseline" `Quick test_baseline_constants ]) ]
