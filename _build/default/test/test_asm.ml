(* Assembler: label resolution, displacement arithmetic, pseudo-instruction
   expansion, image layout. *)

open Isa
open Asm.Build

let assemble_words items = Asm.assemble { Asm.origin = 0x2000; items }

let test_sequential_layout () =
  let image = assemble_words [ nop; nop; nop ] in
  Alcotest.(check (list int)) "addresses"
    [ 0x2000; 0x2004; 0x2008 ] (List.map fst image)

let test_label_no_size () =
  let image = assemble_words [ nop; label "x"; nop ] in
  Alcotest.(check int) "labels are zero-sized" 2 (List.length image)

let test_forward_branch () =
  let image = assemble_words [ j "target"; nop; label "target"; nop ] in
  let jump_word = List.assoc 0x2000 image in
  (match Code.decode jump_word with
   | Some (Insn.Jump d) ->
     (* target = 0x2008; pc = 0x2000; disp = 2 words *)
     Alcotest.(check int) "displacement" 2 d
   | _ -> Alcotest.fail "not a jump")

let test_backward_branch () =
  let image = assemble_words [ label "top"; nop; bf "top"; nop ] in
  let word = List.assoc 0x2004 image in
  (match Code.decode word with
   | Some (Insn.Branch_flag d) ->
     Alcotest.(check int) "negative displacement"
       (-1) (Util.U32.signed (Util.U32.sext ~bits:26 d))
   | _ -> Alcotest.fail "not a bf")

let test_la_expansion () =
  let image =
    assemble_words [ la 5 "data"; nop; label "data"; word 0xCAFEBABE ]
  in
  Alcotest.(check int) "la is two words + nop + data" 4 (List.length image);
  (match Code.decode (List.assoc 0x2000 image) with
   | Some (Insn.Movhi (5, hi)) -> Alcotest.(check int) "hi half" 0 hi
   | _ -> Alcotest.fail "expected movhi");
  (match Code.decode (List.assoc 0x2004 image) with
   | Some (Insn.Alui (Insn.Ori, 5, 5, lo)) ->
     Alcotest.(check int) "lo half" 0x200C lo
   | _ -> Alcotest.fail "expected ori")

let test_unknown_label () =
  Alcotest.check_raises "raises" (Asm.Unknown_label "nowhere")
    (fun () -> ignore (assemble_words [ j "nowhere"; nop ]))

let test_label_address () =
  let program = { Asm.origin = 0x100; items = [ nop; nop; label "here"; nop ] } in
  Alcotest.(check int) "address" 0x108 (Asm.label_address program "here")

let test_li32 () =
  let image = assemble_words (li32 7 0xDEADBEEF) in
  (match Code.decode (List.assoc 0x2000 image),
         Code.decode (List.assoc 0x2004 image) with
   | Some (Insn.Movhi (7, 0xDEAD)), Some (Insn.Alui (Insn.Ori, 7, 7, 0xBEEF)) -> ()
   | _ -> Alcotest.fail "li32 shape")

let test_li_bounds () =
  Alcotest.check_raises "too large" (Invalid_argument "Build.li: use li32")
    (fun () -> ignore (li 1 0x8000));
  Alcotest.check_raises "negative" (Invalid_argument "Build.li: use li32")
    (fun () -> ignore (li 1 (-1)))

let test_word_literal () =
  let image = assemble_words [ word 0x12345678 ] in
  Alcotest.(check int) "literal" 0x12345678 (List.assoc 0x2000 image)

let test_data_masked () =
  let image = assemble_words [ word (-1) ] in
  Alcotest.(check int) "masked to 32 bits" 0xFFFF_FFFF (List.assoc 0x2000 image)

let () =
  Alcotest.run "asm"
    [ ("asm",
       [ Alcotest.test_case "sequential layout" `Quick test_sequential_layout;
         Alcotest.test_case "label size" `Quick test_label_no_size;
         Alcotest.test_case "forward branch" `Quick test_forward_branch;
         Alcotest.test_case "backward branch" `Quick test_backward_branch;
         Alcotest.test_case "la expansion" `Quick test_la_expansion;
         Alcotest.test_case "unknown label" `Quick test_unknown_label;
         Alcotest.test_case "label address" `Quick test_label_address;
         Alcotest.test_case "li32" `Quick test_li32;
         Alcotest.test_case "li bounds" `Quick test_li_bounds;
         Alcotest.test_case "word literal" `Quick test_word_literal;
         Alcotest.test_case "word masked" `Quick test_data_masked ]) ]
