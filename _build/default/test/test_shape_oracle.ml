(* Shape normalisation (property classes) and the expert-validation
   oracle. *)

module Expr = Invariant.Expr
module Var = Trace.Var
module Shape = Scifinder_core.Shape
module Oracle = Scifinder_core.Oracle

let inv ?(point = "l.add") body = { Expr.point; body }
let eq a b = Expr.Cmp (Expr.Eq, a, b)
let v_post d = Expr.V (Var.post_id d)
let v_orig d = Expr.V (Var.orig_id d)
let v_insn i = Expr.V (Var.insn_id i)

(* ---- shapes ---- *)

let test_gpr_collapse () =
  let a = inv (eq (v_post (Var.Gpr 5)) (v_orig (Var.Gpr 5))) in
  let b = inv (eq (v_post (Var.Gpr 17)) (v_orig (Var.Gpr 17))) in
  Alcotest.(check string) "same frame class" (Shape.key a) (Shape.key b)

let test_gpr0_and_link_kept_special () =
  let zero = inv (eq (v_post (Var.Gpr 0)) (Expr.Imm 0)) in
  let any = inv (eq (v_post (Var.Gpr 5)) (Expr.Imm 0)) in
  Alcotest.(check bool) "GPR0 distinct" true (Shape.key zero <> Shape.key any);
  let link = inv (eq (v_post (Var.Gpr 9)) (v_orig (Var.Gpr 9))) in
  let frame = inv (eq (v_post (Var.Gpr 5)) (v_orig (Var.Gpr 5))) in
  Alcotest.(check bool) "GPR9 distinct" true (Shape.key link <> Shape.key frame)

let test_pc_family_collapse () =
  let a = inv (eq (Expr.Bin (Expr.Minus, Var.post_id Var.Pc, Var.orig_id Var.Pc))
                 (Expr.Imm 4)) in
  let b = inv (eq (Expr.Bin (Expr.Minus, Var.post_id Var.Npc, Var.orig_id Var.Nnpc))
                 (Expr.Imm (-4))) in
  (* Both are "(PC* - PC*) = K". *)
  Alcotest.(check string) "continuity class" (Shape.key a) (Shape.key b)

let test_vector_constants_kept () =
  let sys = inv ~point:"l.sys" (eq (v_post Var.Pc) (Expr.Imm 0xC00)) in
  let trap = inv ~point:"l.trap" (eq (v_post Var.Pc) (Expr.Imm 0xE00)) in
  Alcotest.(check bool) "different vectors differ" true
    (Shape.key sys <> Shape.key trap)

let test_group_and_representatives () =
  let invs =
    [ inv (eq (v_post (Var.Gpr 3)) (v_orig (Var.Gpr 3)));
      inv (eq (v_post (Var.Gpr 4)) (v_orig (Var.Gpr 4)));
      inv (eq (v_post (Var.Gpr 0)) (Expr.Imm 0)) ]
  in
  Alcotest.(check int) "two classes" 2 (Shape.class_count invs);
  let reps = Shape.representatives invs in
  Alcotest.(check int) "one rep per class" 2 (List.length reps)

let test_point_family () =
  Alcotest.(check string) "loads" "load" (Shape.point_family "l.lbs");
  Alcotest.(check string) "stores" "store" (Shape.point_family "l.sh");
  Alcotest.(check string) "setflag" "setflag" (Shape.point_family "l.sfgeu");
  Alcotest.(check string) "exception" "exception" (Shape.point_family "illegal");
  Alcotest.(check string) "alu" "compute" (Shape.point_family "l.xor")

(* ---- oracle ---- *)

let accepts i = Oracle.plausible i
let check_accepts name expected i = Alcotest.(check bool) name expected (accepts i)

let test_oracle_structural_accepted () =
  check_accepts "vector constant" true
    (inv ~point:"l.sys" (eq (v_post Var.Pc) (Expr.Imm 0xC00)));
  check_accepts "ESR save" true
    (inv ~point:"l.sys" (eq (v_post Var.Esr) (v_orig Var.Sr_full)));
  check_accepts "GPR0" true
    (inv (eq (v_post (Var.Gpr 0)) (Expr.Imm 0)));
  check_accepts "IR = MEM_AT_PC" true
    (inv (eq (v_insn Var.Ir) (v_insn Var.Mem_at_pc)));
  check_accepts "opcode constant" true
    (inv ~point:"l.ori" (eq (v_insn Var.Opcode) (Expr.Imm 0x2A)));
  check_accepts "diff bound" true
    (inv ~point:"l.sfltu" (Expr.Cmp (Expr.Ge, v_insn Var.Prod_u, Expr.Imm 0)));
  check_accepts "self frame of any register" true
    (inv (eq (v_post (Var.Gpr 23)) (v_orig (Var.Gpr 23))))

let test_oracle_incidental_rejected () =
  check_accepts "specific register value" false
    (inv (eq (v_post (Var.Gpr 13)) (Expr.Imm 0x2DE0)));
  check_accepts "inter-register coincidence" false
    (inv (eq (v_post (Var.Gpr 5)) (v_post (Var.Gpr 6))));
  check_accepts "live-value disequality" false
    (inv (Expr.Cmp (Expr.Ne, v_post (Var.Gpr 4), v_insn Var.Dest)));
  check_accepts "live-value ordering" false
    (inv (Expr.Cmp (Expr.Gt, v_insn Var.Ir, v_insn Var.Dest)));
  check_accepts "data value set" false
    (inv (Expr.In (v_insn Var.Opa, [ 0; 3; 8 ])));
  check_accepts "incidental constant" false
    (inv (eq (v_insn Var.Dest) (Expr.Imm 0xBADF00D)))

let test_oracle_flag_sets_allowed () =
  check_accepts "flag value set" true
    (inv (Expr.In (v_post Var.Sf, [ 0; 1 ])));
  check_accepts "vector set" true
    (inv (Expr.In (v_insn Var.Vec, [ 0; 0xC00 ])))

let test_validate_partition () =
  let good = inv (eq (v_post (Var.Gpr 0)) (Expr.Imm 0)) in
  let bad = inv (eq (v_post (Var.Gpr 7)) (Expr.Imm 0x1234567)) in
  let ok, fp = Oracle.validate [ good; bad ] in
  Alcotest.(check int) "one survives" 1 (List.length ok);
  Alcotest.(check int) "one rejected" 1 (List.length fp)

let () =
  Alcotest.run "shape-oracle"
    [ ("shape",
       [ Alcotest.test_case "gpr collapse" `Quick test_gpr_collapse;
         Alcotest.test_case "special registers" `Quick test_gpr0_and_link_kept_special;
         Alcotest.test_case "pc family" `Quick test_pc_family_collapse;
         Alcotest.test_case "vector constants" `Quick test_vector_constants_kept;
         Alcotest.test_case "grouping" `Quick test_group_and_representatives;
         Alcotest.test_case "families" `Quick test_point_family ]);
      ("oracle",
       [ Alcotest.test_case "structural accepted" `Quick test_oracle_structural_accepted;
         Alcotest.test_case "incidental rejected" `Quick test_oracle_incidental_rejected;
         Alcotest.test_case "flag sets" `Quick test_oracle_flag_sets_allowed;
         Alcotest.test_case "partition" `Quick test_validate_partition ]) ]
