(* The §3.2 optimisation passes. *)

module Expr = Invariant.Expr
module Var = Trace.Var

let g1 = Var.post_id (Var.Gpr 1)
let g2 = Var.post_id (Var.Gpr 2)
let g3 = Var.post_id (Var.Gpr 3)
let g4 = Var.post_id (Var.Gpr 4)

let inv ?(point = "l.add") body = { Expr.point; body }
let eq a b = Expr.Cmp (Expr.Eq, a, b)
let strings invs = List.map Expr.to_string invs
let contains invs s = List.mem s (strings invs)

(* ---- constant propagation ---- *)

let test_cp_substitutes () =
  let invs =
    [ inv (eq (Expr.V g1) (Expr.Imm 0));
      inv (Expr.Cmp (Expr.Le, Expr.V g1, Expr.V g2)) ]
  in
  let out = Invopt.Constprop.run invs in
  Alcotest.(check int) "count preserved" 2 (List.length out);
  Alcotest.(check bool) "substituted" true
    (contains out "risingEdge(l.add) -> 0 <= GPR2")

let test_cp_iterates () =
  (* g1 = 5; g2 - g1 = 3 reveals g2 = 8; then g3 <= g2 becomes g3 <= 8. *)
  let invs =
    [ inv (eq (Expr.V g1) (Expr.Imm 5));
      inv (eq (Expr.Bin (Expr.Minus, g2, g1)) (Expr.Imm 3));
      inv (Expr.Cmp (Expr.Le, Expr.V g3, Expr.V g2)) ]
  in
  let out = Invopt.Constprop.run invs in
  Alcotest.(check bool) "derived const" true
    (contains out "risingEdge(l.add) -> GPR2 = 8");
  Alcotest.(check bool) "second-round substitution" true
    (contains out "risingEdge(l.add) -> GPR3 <= 8")

let test_cp_respects_points () =
  let invs =
    [ inv ~point:"l.add" (eq (Expr.V g1) (Expr.Imm 0));
      inv ~point:"l.sub" (Expr.Cmp (Expr.Le, Expr.V g1, Expr.V g2)) ]
  in
  let out = Invopt.Constprop.run invs in
  Alcotest.(check bool) "no cross-point substitution" true
    (contains out "risingEdge(l.sub) -> GPR1 <= GPR2")

let test_cp_reduces_variables () =
  let invs =
    [ inv (eq (Expr.V g1) (Expr.Imm 0));
      inv (Expr.Cmp (Expr.Le, Expr.V g1, Expr.V g2)) ]
  in
  let before = List.fold_left (fun a i -> a + Expr.var_occurrences i) 0 invs in
  let out = Invopt.Constprop.run invs in
  let after = List.fold_left (fun a i -> a + Expr.var_occurrences i) 0 out in
  Alcotest.(check bool) "fewer variable occurrences" true (after < before)

(* ---- deducible removal ---- *)

let test_dr_transitive_chain () =
  (* a > b, b > c, a > c: the last is deducible. *)
  let invs =
    [ inv (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g2));
      inv (Expr.Cmp (Expr.Gt, Expr.V g2, Expr.V g3));
      inv (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g3)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "one removed" 2 (List.length out);
  Alcotest.(check bool) "kept the generators" true
    (contains out "risingEdge(l.add) -> GPR1 > GPR2"
     && contains out "risingEdge(l.add) -> GPR2 > GPR3")

let test_dr_mixed_strictness () =
  (* a >= b, b > c derives a > c. *)
  let invs =
    [ inv (Expr.Cmp (Expr.Ge, Expr.V g1, Expr.V g2));
      inv (Expr.Cmp (Expr.Gt, Expr.V g2, Expr.V g3));
      inv (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g3)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "derived strict removed" 2 (List.length out)

let test_dr_nonstrict_not_from_nonstrict_pair () =
  (* a >= b, b >= c derives a >= c but NOT a > c. *)
  let invs =
    [ inv (Expr.Cmp (Expr.Ge, Expr.V g1, Expr.V g2));
      inv (Expr.Cmp (Expr.Ge, Expr.V g2, Expr.V g3));
      inv (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g3)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "strict conclusion kept" 3 (List.length out)

let test_dr_lt_canonicalised () =
  (* c < b, b < a, c < a : same chain through the < spelling. *)
  let invs =
    [ inv (Expr.Cmp (Expr.Lt, Expr.V g3, Expr.V g2));
      inv (Expr.Cmp (Expr.Lt, Expr.V g2, Expr.V g1));
      inv (Expr.Cmp (Expr.Lt, Expr.V g3, Expr.V g1)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "one removed" 2 (List.length out)

let test_dr_equality_spanning_tree () =
  (* a=b, b=c, a=c: keep two (a spanning tree of the class). *)
  let invs =
    [ inv (eq (Expr.V g1) (Expr.V g2));
      inv (eq (Expr.V g2) (Expr.V g3));
      inv (eq (Expr.V g1) (Expr.V g3)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "spanning tree" 2 (List.length out)

let test_dr_eq_through_constant () =
  (* a=5, b=5, a=b: one of the three is deducible. *)
  let invs =
    [ inv (eq (Expr.V g1) (Expr.Imm 5));
      inv (eq (Expr.V g2) (Expr.Imm 5));
      inv (eq (Expr.V g1) (Expr.V g2)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "redundant equality removed" 2 (List.length out)

let test_dr_keeps_other_points_apart () =
  let invs =
    [ inv ~point:"l.add" (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g2));
      inv ~point:"l.sub" (Expr.Cmp (Expr.Gt, Expr.V g2, Expr.V g3));
      inv ~point:"l.add" (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g3)) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "no cross-point deduction" 3 (List.length out)

let test_dr_keeps_unrelated () =
  let invs =
    [ inv (Expr.Cmp (Expr.Gt, Expr.V g1, Expr.V g2));
      inv (Expr.Cmp (Expr.Gt, Expr.V g3, Expr.V g4));
      inv (Expr.In (Expr.V g1, [ 1; 2 ])) ]
  in
  let out = Invopt.Deducible.run invs in
  Alcotest.(check int) "all kept" 3 (List.length out)

(* ---- equivalence removal ---- *)

let test_er_removes_mirrors () =
  let invs =
    [ inv (eq (Expr.V g1) (Expr.V g2));
      inv (eq (Expr.V g2) (Expr.V g1)) ]
  in
  let out = Invopt.Equivalence.run invs in
  Alcotest.(check int) "one kept" 1 (List.length out)

let test_er_keeps_distinct () =
  let invs =
    [ inv (eq (Expr.V g1) (Expr.V g2));
      inv (eq (Expr.V g1) (Expr.V g3)) ]
  in
  let out = Invopt.Equivalence.run invs in
  Alcotest.(check int) "both kept" 2 (List.length out)

(* ---- the pipeline ---- *)

let test_pipeline_accounting () =
  let invs =
    [ inv (eq (Expr.V g1) (Expr.Imm 0));
      inv (Expr.Cmp (Expr.Gt, Expr.V g2, Expr.V g1));
      inv (Expr.Cmp (Expr.Gt, Expr.V g3, Expr.V g2));
      inv (Expr.Cmp (Expr.Gt, Expr.V g3, Expr.V g1));
      inv (eq (Expr.V g4) (Expr.V g2));
      inv (eq (Expr.V g2) (Expr.V g4)) ]
  in
  let result = Invopt.Pipeline.optimize invs in
  (match result.Invopt.Pipeline.stages with
   | [ raw; cp; dr; er ] ->
     Alcotest.(check int) "raw count" 6 raw.invariants;
     Alcotest.(check int) "CP preserves count" 6 cp.invariants;
     Alcotest.(check bool) "CP cuts variables" true (cp.variables <= raw.variables);
     Alcotest.(check bool) "DR cuts invariants" true (dr.invariants < cp.invariants);
     Alcotest.(check bool) "ER monotone" true (er.invariants <= dr.invariants);
     Alcotest.(check int) "final matches list" er.invariants
       (List.length result.Invopt.Pipeline.optimized)
   | _ -> Alcotest.fail "four stages expected")

let test_pipeline_preserves_truth () =
  (* Every surviving invariant must hold wherever the originals held: run
     on a real trace and check that no optimized invariant is violated by
     the trace it was mined from. *)
  let w = Option.get (Workloads.Suite.by_name "helloworld") in
  let engine = Daikon.Engine.create () in
  let records = ref [] in
  ignore
    (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
       ~observer:(fun r ->
           records := r :: !records;
           Daikon.Engine.observe engine r)
       w.image);
  let invs = Daikon.Engine.invariants engine in
  let result = Invopt.Pipeline.optimize invs in
  let idx = Sci.Checker.index result.Invopt.Pipeline.optimized in
  let violated = Sci.Checker.violations idx (List.rev !records) in
  Alcotest.(check int) "optimized invariants hold on their corpus" 0
    (List.length violated)

let () =
  Alcotest.run "invopt"
    [ ("constprop",
       [ Alcotest.test_case "substitutes" `Quick test_cp_substitutes;
         Alcotest.test_case "iterates" `Quick test_cp_iterates;
         Alcotest.test_case "per point" `Quick test_cp_respects_points;
         Alcotest.test_case "variable reduction" `Quick test_cp_reduces_variables ]);
      ("deducible",
       [ Alcotest.test_case "transitive chain" `Quick test_dr_transitive_chain;
         Alcotest.test_case "mixed strictness" `Quick test_dr_mixed_strictness;
         Alcotest.test_case "strict not from nonstrict" `Quick test_dr_nonstrict_not_from_nonstrict_pair;
         Alcotest.test_case "lt canonicalised" `Quick test_dr_lt_canonicalised;
         Alcotest.test_case "equality tree" `Quick test_dr_equality_spanning_tree;
         Alcotest.test_case "eq via constant" `Quick test_dr_eq_through_constant;
         Alcotest.test_case "points apart" `Quick test_dr_keeps_other_points_apart;
         Alcotest.test_case "unrelated kept" `Quick test_dr_keeps_unrelated ]);
      ("equivalence",
       [ Alcotest.test_case "mirrors" `Quick test_er_removes_mirrors;
         Alcotest.test_case "distinct kept" `Quick test_er_keeps_distinct ]);
      ("pipeline",
       [ Alcotest.test_case "accounting" `Quick test_pipeline_accounting;
         Alcotest.test_case "truth preserved" `Slow test_pipeline_preserves_truth ]) ]
