(* End-to-end integration: a reduced corpus through all four SCIFinder
   phases, exercising the same code paths as the full benchmark harness
   but small enough for the test suite. *)

module Expr = Invariant.Expr
module Pipeline = Scifinder_core.Pipeline
module Experiments = Scifinder_core.Experiments

(* Mine a compact corpus once and share it across the tests. *)
let small_groups = [ [ "vmlinux" ]; [ "instru" ]; [ "basicmath" ]; [ "parser" ] ]
let small_labels = [ "vmlinux"; "instru"; "basicmath"; "parser" ]

let mining =
  lazy (Pipeline.mine ~groups:small_groups ~labels:small_labels ())

let optimized =
  lazy
    (let m = Lazy.force mining in
     (Pipeline.optimize m.Pipeline.invariants).Pipeline.result.Invopt.Pipeline.optimized)

let identification =
  lazy
    (Pipeline.identify ~invariants:(Lazy.force optimized) Bugs.Table1.all)

let test_mining_shape () =
  let m = Lazy.force mining in
  Alcotest.(check bool) "records flowed" true (m.Pipeline.record_count > 1000);
  Alcotest.(check bool) "invariants mined" true
    (List.length m.Pipeline.invariants > 1000);
  Alcotest.(check int) "one Figure-3 row per group" 4
    (List.length m.Pipeline.figure3)

let test_figure3_accounting () =
  let m = Lazy.force mining in
  List.iter
    (fun (row : Pipeline.figure3_row) ->
       Alcotest.(check int) (row.group_label ^ " total = unmodified + new")
         row.total (row.unmodified + row.fresh))
    m.Pipeline.figure3;
  (* The first row has no previous snapshot: everything is new. *)
  (match m.Pipeline.figure3 with
   | first :: _ ->
     Alcotest.(check int) "first row all new" 0 first.unmodified;
     Alcotest.(check int) "first row no deletions" 0 first.deleted
   | [] -> Alcotest.fail "no rows")

let test_optimizer_table2_shape () =
  let m = Lazy.force mining in
  let result = (Pipeline.optimize m.Pipeline.invariants).Pipeline.result in
  match result.Invopt.Pipeline.stages with
  | [ raw; cp; dr; er ] ->
    Alcotest.(check int) "CP preserves invariant count"
      raw.invariants cp.invariants;
    Alcotest.(check bool) "CP reduces variables" true
      (cp.variables < raw.variables);
    Alcotest.(check bool) "DR reduces invariants" true
      (dr.invariants < cp.invariants);
    Alcotest.(check bool) "ER reduces further" true
      (er.invariants <= dr.invariants)
  | _ -> Alcotest.fail "four stages"

let test_identification_table3_shape () =
  let ident = Lazy.force identification in
  let reports = ident.Pipeline.summary.Sci.Identify.reports in
  Alcotest.(check int) "all 17 bugs processed" 17 (List.length reports);
  let detected =
    List.filter (fun (r : Sci.Identify.report) -> r.detected) reports
  in
  (* The paper: 16 of 17; b2 is the microarchitectural exception. *)
  Alcotest.(check bool) "at least 14 detected" true (List.length detected >= 14);
  let b2 = List.find (fun (r : Sci.Identify.report) ->
      r.bug.Bugs.Registry.id = "b2") reports in
  Alcotest.(check bool) "b2 undetected" false b2.detected

let test_inference_runs () =
  let ident = Lazy.force identification in
  let inference =
    Pipeline.infer ~all_invariants:(Lazy.force optimized) ident.Pipeline.summary
  in
  Alcotest.(check bool) "test accuracy well above chance" true
    (inference.Pipeline.test_accuracy > 0.7);
  Alcotest.(check bool) "selects features" true
    (inference.Pipeline.selected_features <> []);
  Alcotest.(check bool) "recommends SCI" true
    (inference.Pipeline.recommended <> []);
  Alcotest.(check bool) "oracle removes some" true
    (inference.Pipeline.inferred_fp <> []);
  Alcotest.(check bool) "properties counted" true
    (inference.Pipeline.property_count > 0);
  (* Surviving + rejected = recommended. *)
  Alcotest.(check int) "partition"
    (List.length inference.Pipeline.recommended)
    (List.length inference.Pipeline.surviving
     + List.length inference.Pipeline.inferred_fp)

let test_assertions_stop_the_exploit () =
  (* The SPECS story: enforce b10's SCI as assertions and the buggy
     processor is caught red-handed, while the clean one runs silent. *)
  let ident = Lazy.force identification in
  let b10_report =
    List.find (fun (r : Sci.Identify.report) -> r.bug.Bugs.Registry.id = "b10")
      ident.Pipeline.summary.Sci.Identify.reports
  in
  let battery = Assertions.Ovl.of_invariants b10_report.true_sci in
  let b10 = b10_report.bug in
  let buggy = Sci.Identify.capture_trigger ~fault:b10.fault b10.trigger in
  let clean = Sci.Identify.capture_trigger b10.trigger in
  Alcotest.(check bool) "fires on the exploit" true
    (Assertions.Monitor.detects battery buggy);
  Alcotest.(check bool) "silent on the clean processor" false
    (Assertions.Monitor.detects battery clean)

let test_hardware_overhead_report () =
  let ident = Lazy.force identification in
  let sci = ident.Pipeline.summary.Sci.Identify.unique_sci in
  let report = Experiments.hardware_overhead ~identified_sci:sci ~inferred_sci:[] in
  Alcotest.(check bool) "assertions exist" true (report.initial_assertions > 0);
  Alcotest.(check bool) "cost positive" true (report.initial.total_luts > 0);
  Alcotest.(check bool) "final includes initial" true
    (report.final.total_luts >= report.initial.total_luts)

let () =
  Alcotest.run "integration"
    [ ("pipeline",
       [ Alcotest.test_case "mining" `Slow test_mining_shape;
         Alcotest.test_case "figure 3 accounting" `Slow test_figure3_accounting;
         Alcotest.test_case "table 2 shape" `Slow test_optimizer_table2_shape;
         Alcotest.test_case "table 3 shape" `Slow test_identification_table3_shape;
         Alcotest.test_case "inference" `Slow test_inference_runs;
         Alcotest.test_case "dynamic verification" `Slow test_assertions_stop_the_exploit;
         Alcotest.test_case "hardware overhead" `Slow test_hardware_overhead_report ]) ]
