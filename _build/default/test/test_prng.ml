(* The deterministic PRNG used for every seeded experiment. *)

let test_determinism () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Prng.u32 a) (Util.Prng.u32 b)
  done

let test_different_seeds () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let xs = List.init 16 (fun _ -> Util.Prng.u32 a) in
  let ys = List.init 16 (fun _ -> Util.Prng.u32 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_int_bound () =
  let rng = Util.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Util.Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_int_rejects_bad_bound () =
  let rng = Util.Prng.create 7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Util.Prng.int rng 0))

let test_shuffle_is_permutation () =
  let rng = Util.Prng.create 99 in
  let arr = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_moves_something () =
  let rng = Util.Prng.create 99 in
  let arr = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle rng arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 50 (fun i -> i))

let test_sample () =
  let rng = Util.Prng.create 5 in
  let s = Util.Prng.sample rng ~n:20 ~k:8 in
  Alcotest.(check int) "size" 8 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.length sorted = 8
                 && Array.for_all (fun x -> x >= 0 && x < 20) sorted in
  let rec no_dup i = i >= 7 || (sorted.(i) <> sorted.(i + 1) && no_dup (i + 1)) in
  Alcotest.(check bool) "distinct in range" true (distinct && no_dup 0)

let test_float_range () =
  let rng = Util.Prng.create 3 in
  for _ = 1 to 1000 do
    let f = Util.Prng.float rng in
    Alcotest.(check bool) "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_bool_mixes () =
  let rng = Util.Prng.create 11 in
  let trues = ref 0 in
  for _ = 1 to 1000 do if Util.Prng.bool rng then incr trues done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let () =
  Alcotest.run "prng"
    [ ("prng",
       [ Alcotest.test_case "determinism" `Quick test_determinism;
         Alcotest.test_case "seed sensitivity" `Quick test_different_seeds;
         Alcotest.test_case "int bound" `Quick test_int_bound;
         Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
         Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
         Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
         Alcotest.test_case "sample" `Quick test_sample;
         Alcotest.test_case "float range" `Quick test_float_range;
         Alcotest.test_case "bool balance" `Quick test_bool_mixes ]) ]
