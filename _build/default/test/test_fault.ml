(* Fault injection interface: hooks perturb exactly their own aspect of
   the semantics and compose. *)

open Isa
module M = Cpu.Machine
module F = Cpu.Fault

let code_base = 0x2000

let run ?(fault = F.none) ?(regs = []) insns =
  let items = List.map (fun i -> Asm.I i) insns @ [ Asm.I (Insn.Nop 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let machine = M.create ~fault () in
  M.load_image machine image;
  M.set_pc machine code_base;
  List.iter (fun (r, v) -> machine.M.gpr.(r) <- v) regs;
  ignore (M.run ~max_steps:1000 ~observer:(fun _ -> ()) machine);
  machine

let check = Alcotest.(check int)

let test_none_is_identity () =
  let a = run ~regs:[ (1, 3); (2, 4) ] [ Insn.Alu (Insn.Add, 5, 1, 2) ] in
  let b = run ~fault:F.none ~regs:[ (1, 3); (2, 4) ] [ Insn.Alu (Insn.Add, 5, 1, 2) ] in
  check "same result" a.M.gpr.(5) b.M.gpr.(5)

let test_on_alu () =
  let fault = { F.none with F.name = "alu"; on_alu = (fun _ r -> r + 1) } in
  let m = run ~fault ~regs:[ (1, 3); (2, 4) ] [ Insn.Alu (Insn.Add, 5, 1, 2) ] in
  check "perturbed" 8 m.M.gpr.(5)

let test_on_compare () =
  let fault = { F.none with F.name = "cmp"; on_compare = (fun _ ~a:_ ~b:_ r -> not r) } in
  let m = run ~fault ~regs:[ (1, 1); (2, 1) ] [ Insn.Setflag (Insn.Sfeq, 1, 2) ] in
  check "inverted flag" 0 (Spr.Sr_bits.get m.M.sr Spr.Sr_bits.f)

let test_on_writeback () =
  let fault = { F.none with F.name = "wb";
                on_writeback = (fun _ ~reg ~pc:_ v -> if reg = 5 then 99 else v) } in
  let m = run ~fault ~regs:[ (1, 3); (2, 4) ]
      [ Insn.Alu (Insn.Add, 5, 1, 2); Insn.Alu (Insn.Add, 6, 1, 2) ] in
  check "targeted register corrupted" 99 m.M.gpr.(5);
  check "other register clean" 7 m.M.gpr.(6)

let test_allow_gpr0 () =
  let fault = { F.none with F.name = "r0"; allow_gpr0_write = true } in
  let m = run ~fault ~regs:[ (1, 41); (2, 1) ] [ Insn.Alu (Insn.Add, 0, 1, 2) ] in
  check "r0 written" 42 m.M.gpr.(0)

let test_on_load_store () =
  let fault = { F.none with F.name = "ls";
                on_load = (fun _ ~addr:_ ~raw:_ _ -> 0xBAD);
                on_store = (fun _ ~addr:_ ~exec_pc:_ v -> v lxor 0xFF) } in
  let m = run ~fault ~regs:[ (1, 0x8000); (2, 0x12345678) ]
      [ Insn.Store (Insn.Sw, 0, 1, 2); Insn.Load (Insn.Lwz, 3, 1, 0) ] in
  check "load corrupted" 0xBAD m.M.gpr.(3);
  (* The store was corrupted in memory too. *)
  check "stored value xor'd" (0x12345678 lxor 0xFF)
    (Cpu.Memory.read32 m.M.mem 0x8000)

let test_on_eff_addr () =
  let fault = { F.none with F.name = "ea";
                on_eff_addr = (fun _ ea -> ea + 4) } in
  let m = run ~fault ~regs:[ (1, 0x8000); (2, 7) ]
      [ Insn.Store (Insn.Sw, 0, 1, 2) ] in
  check "skewed address" 7 (Cpu.Memory.read32 m.M.mem 0x8004)

let test_mtspr_nop () =
  let fault = { F.none with F.name = "mtspr";
                mtspr_is_nop = (fun ~spr_addr -> spr_addr = Spr.address Spr.Eear0) } in
  let m = run ~fault ~regs:[ (1, 0xCAFE) ]
      [ Insn.Mtspr (0, 1, Spr.address Spr.Eear0);
        Insn.Mtspr (0, 1, Spr.address Spr.Epcr0) ] in
  check "EEAR write dropped" 0 m.M.eear;
  check "EPCR write landed" 0xCAFE m.M.epcr

let test_suppress_exception () =
  let fault = { F.none with F.name = "nosys";
                suppress_exception = (fun ctx ~prev:_ -> ctx.F.kind = Spr.Vector.Syscall) } in
  let m = run ~fault [ Insn.Sys 1; Insn.Alui (Insn.Addi, 3, 3, 1) ] in
  check "fell through" 1 m.M.gpr.(3);
  check "no SPR updates" 0 m.M.epcr

let test_exception_epcr_hook () =
  let fault = { F.none with F.name = "epcr";
                on_exception_epcr = (fun _ e -> e + 12) } in
  let items = [ Asm.I (Insn.Sys 1) ] in
  let image = Asm.assemble { Asm.origin = code_base; items } in
  let m = M.create ~fault () in
  M.load_image m image;
  M.set_pc m code_base;
  ignore (M.step m);
  check "skewed EPCR" (code_base + 4 + 12) m.M.epcr

let test_rfe_hooks () =
  let fault = { F.none with F.name = "rfe"; on_rfe_pc = (fun pc -> pc + 8) } in
  let m = M.create ~fault () in
  let items = [ Asm.I Insn.Rfe ] in
  M.load_image m (Asm.assemble { Asm.origin = code_base; items });
  M.set_pc m code_base;
  m.M.epcr <- 0x3000;
  ignore (M.step m);
  check "skewed return" 0x3008 m.M.pc

let test_compose () =
  let f1 = { F.none with F.name = "one"; on_alu = (fun _ r -> r + 1) } in
  let f2 = { F.none with F.name = "two"; on_alu = (fun _ r -> r * 2) } in
  let fault = F.compose f1 f2 in
  Alcotest.(check string) "name" "one+two" fault.F.name;
  let m = run ~fault ~regs:[ (1, 3); (2, 4) ] [ Insn.Alu (Insn.Add, 5, 1, 2) ] in
  (* f1 first (inner), then f2: (7 + 1) * 2 *)
  check "composition order" 16 m.M.gpr.(5)

let test_compose_flags () =
  let f1 = { F.none with F.name = "a"; allow_gpr0_write = true } in
  let fault = F.compose f1 F.none in
  Alcotest.(check bool) "or-combined" true fault.F.allow_gpr0_write

let () =
  Alcotest.run "fault"
    [ ("hooks",
       [ Alcotest.test_case "identity" `Quick test_none_is_identity;
         Alcotest.test_case "on_alu" `Quick test_on_alu;
         Alcotest.test_case "on_compare" `Quick test_on_compare;
         Alcotest.test_case "on_writeback" `Quick test_on_writeback;
         Alcotest.test_case "gpr0" `Quick test_allow_gpr0;
         Alcotest.test_case "load/store" `Quick test_on_load_store;
         Alcotest.test_case "eff addr" `Quick test_on_eff_addr;
         Alcotest.test_case "mtspr nop" `Quick test_mtspr_nop;
         Alcotest.test_case "suppress exception" `Quick test_suppress_exception;
         Alcotest.test_case "epcr hook" `Quick test_exception_epcr_hook;
         Alcotest.test_case "rfe hooks" `Quick test_rfe_hooks;
         Alcotest.test_case "compose" `Quick test_compose;
         Alcotest.test_case "compose flags" `Quick test_compose_flags ]) ]
