(* The invariant language: evaluation semantics, canonical forms, feature
   extraction. *)

module Expr = Invariant.Expr
module Var = Trace.Var

(* A synthetic record with chosen variable values. *)
let record ?(point = "l.add") assignments =
  let values = Array.make Var.total 0 in
  List.iter (fun (id, v) -> values.(id) <- v) assignments;
  { Trace.Record.point; values; mask = Array.make Var.total true }

let pc = Var.post_id Var.Pc
let pc0 = Var.orig_id Var.Pc
let g3 = Var.post_id (Var.Gpr 3)
let g4 = Var.post_id (Var.Gpr 4)

let inv point body = { Expr.point; body }

let check_holds name expected invariant rec_ =
  Alcotest.(check bool) name expected (Expr.holds invariant rec_)

let test_cmp_eval () =
  let r = record [ (g3, 10); (g4, 20) ] in
  check_holds "lt" true (inv "l.add" (Expr.Cmp (Expr.Lt, Expr.V g3, Expr.V g4))) r;
  check_holds "gt" false (inv "l.add" (Expr.Cmp (Expr.Gt, Expr.V g3, Expr.V g4))) r;
  check_holds "le" true (inv "l.add" (Expr.Cmp (Expr.Le, Expr.V g3, Expr.V g3))) r;
  check_holds "ne" true (inv "l.add" (Expr.Cmp (Expr.Ne, Expr.V g3, Expr.V g4))) r;
  check_holds "eq const" true (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 10))) r

let test_other_point_vacuous () =
  let r = record ~point:"l.sub" [ (g3, 1) ] in
  let i = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 999)) in
  check_holds "vacuously true" true i r;
  Alcotest.(check bool) "not violated" false (Expr.violated i r)

let test_term_eval () =
  let r = record [ (g3, 6); (g4, 0xF0) ] in
  check_holds "mul" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Mul (g3, 4), Expr.Imm 24))) r;
  check_holds "mod" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Mod (g3, 4), Expr.Imm 2))) r;
  check_holds "not" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Notv g4, Expr.Imm 0xFFFF_FF0F))) r;
  check_holds "band" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Band, g3, g4), Expr.Imm 0))) r;
  check_holds "bor" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Bor, g3, g4), Expr.Imm 0xF6))) r;
  check_holds "plus" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Plus, g3, g4), Expr.Imm 0xF6))) r

let test_minus_signed () =
  (* Minus evaluates as the sign-interpreted 32-bit difference. *)
  let r = record [ (g3, 2); (g4, 10) ] in
  check_holds "negative diff" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, g3, g4), Expr.Imm (-8)))) r;
  let r = record [ (pc, 0x2004); (pc0, 0x2000) ] in
  check_holds "pc step" true
    (inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, pc, pc0), Expr.Imm 4))) r

let test_in_eval () =
  let r = record [ (g3, 7) ] in
  check_holds "member" true (inv "l.add" (Expr.In (Expr.V g3, [ 1; 7; 9 ]))) r;
  check_holds "not member" false (inv "l.add" (Expr.In (Expr.V g3, [ 1; 9 ]))) r

let test_canonical_symmetry () =
  let a = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.V g4)) in
  let b = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g4, Expr.V g3)) in
  Alcotest.(check string) "A=B is B=A" (Expr.canonical a) (Expr.canonical b)

let test_canonical_order_flip () =
  let a = inv "l.add" (Expr.Cmp (Expr.Lt, Expr.V g3, Expr.V g4)) in
  let b = inv "l.add" (Expr.Cmp (Expr.Gt, Expr.V g4, Expr.V g3)) in
  Alcotest.(check string) "A<B is B>A" (Expr.canonical a) (Expr.canonical b);
  let c = inv "l.add" (Expr.Cmp (Expr.Le, Expr.V g3, Expr.V g4)) in
  let d = inv "l.add" (Expr.Cmp (Expr.Ge, Expr.V g4, Expr.V g3)) in
  Alcotest.(check string) "A<=B is B>=A" (Expr.canonical c) (Expr.canonical d)

let test_canonical_distinguishes_points () =
  let a = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 0)) in
  let b = inv "l.sub" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 0)) in
  Alcotest.(check bool) "different points differ" true
    (Expr.canonical a <> Expr.canonical b)

let test_canonical_commutative_operands () =
  let a = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Plus, g3, g4), Expr.Imm 5)) in
  let b = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Plus, g4, g3), Expr.Imm 5)) in
  Alcotest.(check string) "plus commutes" (Expr.canonical a) (Expr.canonical b);
  let c = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, g3, g4), Expr.Imm 5)) in
  let d = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, g4, g3), Expr.Imm 5)) in
  Alcotest.(check bool) "minus does not" true
    (Expr.canonical c <> Expr.canonical d)

let test_pretty_print () =
  let i = inv "l.rfe"
      (Expr.Cmp (Expr.Eq, Expr.V (Var.post_id Var.Sr_full),
                 Expr.V (Var.orig_id Var.Esr))) in
  Alcotest.(check string) "paper notation"
    "risingEdge(l.rfe) -> SR = orig(ESR0)" (Expr.to_string i)

let test_var_occurrences () =
  let i = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.Bin (Expr.Minus, g3, g4), Expr.Imm 4)) in
  Alcotest.(check int) "two vars" 2 (Expr.var_occurrences i);
  let j = inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 4)) in
  Alcotest.(check int) "one var" 1 (Expr.var_occurrences j)

let test_features () =
  let i = inv "l.ror"
      (Expr.Cmp (Expr.Eq, Expr.V (Var.post_id (Var.Gpr 6)), Expr.Imm 0)) in
  let feats = Invariant.Feature.of_invariant i in
  Alcotest.(check bool) "mnemonic feature" true (List.mem "ROR" feats);
  Alcotest.(check bool) "var feature" true (List.mem "GPR6" feats);
  Alcotest.(check bool) "operator feature" true (List.mem "==" feats);
  Alcotest.(check bool) "const feature" true (List.mem "CONST" feats)

let test_orig_feature_distinct () =
  let i = inv "l.rfe"
      (Expr.Cmp (Expr.Eq, Expr.V (Var.post_id Var.Sr_full),
                 Expr.V (Var.orig_id Var.Esr))) in
  let feats = Invariant.Feature.of_invariant i in
  Alcotest.(check bool) "orig(ESR0) feature" true (List.mem "orig(ESR0)" feats);
  Alcotest.(check bool) "SR feature" true (List.mem "SR" feats)

let test_feature_space () =
  let invs =
    [ inv "l.add" (Expr.Cmp (Expr.Eq, Expr.V g3, Expr.Imm 0));
      inv "l.sub" (Expr.Cmp (Expr.Lt, Expr.V g3, Expr.V g4)) ]
  in
  let space = Invariant.Feature.build_space invs in
  Alcotest.(check bool) "dimension reasonable" true
    (Invariant.Feature.dimension space >= 5);
  let v = Invariant.Feature.vector space (List.hd invs) in
  Alcotest.(check int) "vector length"
    (Invariant.Feature.dimension space) (Array.length v);
  Alcotest.(check bool) "some features set" true
    (Array.exists (fun x -> x = 1.0) v)

let () =
  Alcotest.run "invariant"
    [ ("eval",
       [ Alcotest.test_case "cmp" `Quick test_cmp_eval;
         Alcotest.test_case "other point" `Quick test_other_point_vacuous;
         Alcotest.test_case "terms" `Quick test_term_eval;
         Alcotest.test_case "minus signed" `Quick test_minus_signed;
         Alcotest.test_case "in" `Quick test_in_eval ]);
      ("canonical",
       [ Alcotest.test_case "eq symmetry" `Quick test_canonical_symmetry;
         Alcotest.test_case "order flip" `Quick test_canonical_order_flip;
         Alcotest.test_case "points" `Quick test_canonical_distinguishes_points;
         Alcotest.test_case "commutativity" `Quick test_canonical_commutative_operands;
         Alcotest.test_case "pretty print" `Quick test_pretty_print;
         Alcotest.test_case "var occurrences" `Quick test_var_occurrences ]);
      ("features",
       [ Alcotest.test_case "extraction" `Quick test_features;
         Alcotest.test_case "orig distinct" `Quick test_orig_feature_distinct;
         Alcotest.test_case "space" `Quick test_feature_space ]) ]
