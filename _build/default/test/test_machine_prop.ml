(* Property-based differential testing: the machine's datapath against
   the U32 reference semantics, over randomized operands. *)

open Isa
module M = Cpu.Machine
module U = Util.U32

let code_base = 0x2000

(* Execute one instruction with given source registers; return the
   machine afterwards. *)
let exec1 ?(regs = []) insn =
  let items = [ Asm.I insn; Asm.I (Insn.Nop 1) ] in
  let m = M.create () in
  M.load_image m (Asm.assemble { Asm.origin = code_base; items });
  M.set_pc m code_base;
  List.iter (fun (r, v) -> m.M.gpr.(r) <- v) regs;
  ignore (M.run ~max_steps:10 ~observer:(fun _ -> ()) m);
  m

let u32_gen = QCheck.map (fun x -> x land 0xFFFF_FFFF) QCheck.int
let pair_gen = QCheck.pair u32_gen u32_gen

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name gen f)

(* Reference semantics of the register-register ALU ops. *)
let reference op a b =
  match op with
  | Insn.Add -> Some (U.add a b)
  | Insn.Sub -> Some (U.sub a b)
  | Insn.And -> Some (U.logand a b)
  | Insn.Or -> Some (U.logor a b)
  | Insn.Xor -> Some (U.logxor a b)
  | Insn.Mul -> Some (U.mul a b)
  | Insn.Mulu -> Some (U.mul a b)   (* low word agrees for signed/unsigned *)
  | Insn.Div -> Some (Option.value ~default:0 (U.div_signed a b))
  | Insn.Divu -> Some (Option.value ~default:0 (U.div_unsigned a b))
  | Insn.Sll -> Some (U.shift_left a (b land 31))
  | Insn.Srl -> Some (U.shift_right_logical a (b land 31))
  | Insn.Sra -> Some (U.shift_right_arith a (b land 31))
  | Insn.Ror -> Some (U.rotate_right a (b land 31))
  | Insn.Addc -> None (* depends on incoming CY; tested separately *)

let alu_ops =
  [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Mul; Insn.Mulu;
    Insn.Div; Insn.Divu; Insn.Sll; Insn.Srl; Insn.Sra; Insn.Ror ]

let alu_gen =
  QCheck.triple (QCheck.oneofl alu_ops) u32_gen u32_gen

let sf_ops =
  Insn.[ Sfeq; Sfne; Sfgtu; Sfgeu; Sfltu; Sfleu; Sfgts; Sfges; Sflts; Sfles ]

let reference_sf op a b =
  match op with
  | Insn.Sfeq -> a = b
  | Insn.Sfne -> a <> b
  | Insn.Sfgtu -> U.ugt a b
  | Insn.Sfgeu -> U.uge a b
  | Insn.Sfltu -> U.ult a b
  | Insn.Sfleu -> U.ule a b
  | Insn.Sfgts -> U.sgt a b
  | Insn.Sfges -> U.sge a b
  | Insn.Sflts -> U.slt a b
  | Insn.Sfles -> U.sle a b

let tests =
  [ prop "ALU matches the reference model" alu_gen
      (fun (op, a, b) ->
         match reference op a b with
         | None -> true
         | Some expected ->
           let m = exec1 ~regs:[ (1, a); (2, b) ] (Insn.Alu (op, 3, 1, 2)) in
           m.M.gpr.(3) = expected);
    prop "addc = add + carry-in" pair_gen
      (fun (a, b) ->
         (* run with CY preset via a wrapping add of ~0 + 1 *)
         let items =
           [ Asm.I (Insn.Alu (Insn.Add, 5, 6, 7));   (* sets CY = 1 *)
             Asm.I (Insn.Alu (Insn.Addc, 3, 1, 2));
             Asm.I (Insn.Nop 1) ]
         in
         let m = M.create () in
         M.load_image m (Asm.assemble { Asm.origin = code_base; items });
         M.set_pc m code_base;
         m.M.gpr.(1) <- a; m.M.gpr.(2) <- b;
         m.M.gpr.(6) <- 0xFFFF_FFFF; m.M.gpr.(7) <- 1;
         ignore (M.run ~max_steps:10 ~observer:(fun _ -> ()) m);
         m.M.gpr.(3) = (a + b + 1) land 0xFFFF_FFFF);
    prop "set-flag matches the reference model"
      (QCheck.triple (QCheck.oneofl sf_ops) u32_gen u32_gen)
      (fun (op, a, b) ->
         let m = exec1 ~regs:[ (1, a); (2, b) ] (Insn.Setflag (op, 1, 2)) in
         (Spr.Sr_bits.get m.M.sr Spr.Sr_bits.f = 1) = reference_sf op a b);
    prop "immediate forms agree with register forms"
      (QCheck.pair u32_gen (QCheck.int_bound 0x7FFF))
      (fun (a, k) ->
         let ri = exec1 ~regs:[ (1, a) ] (Insn.Alui (Insn.Addi, 3, 1, k)) in
         let rr = exec1 ~regs:[ (1, a); (2, k) ] (Insn.Alu (Insn.Add, 3, 1, 2)) in
         ri.M.gpr.(3) = rr.M.gpr.(3));
    prop "store/load word roundtrip"
      (QCheck.pair u32_gen (QCheck.int_bound 0x3FF))
      (fun (v, slot) ->
         let addr = 0x8000 + (slot * 4) in
         let m = exec1 ~regs:[ (1, addr); (2, v) ] (Insn.Store (Insn.Sw, 0, 1, 2)) in
         Cpu.Memory.read32 m.M.mem addr = v);
    prop "byte store keeps neighbours"
      (QCheck.pair u32_gen (QCheck.int_bound 0xFF))
      (fun (v, b) ->
         let items =
           [ Asm.I (Insn.Store (Insn.Sw, 0, 1, 2));
             Asm.I (Insn.Store (Insn.Sb, 1, 1, 3));
             Asm.I (Insn.Load (Insn.Lwz, 4, 1, 0));
             Asm.I (Insn.Nop 1) ]
         in
         let m = M.create () in
         M.load_image m (Asm.assemble { Asm.origin = code_base; items });
         M.set_pc m code_base;
         m.M.gpr.(1) <- 0x8000; m.M.gpr.(2) <- v; m.M.gpr.(3) <- b;
         ignore (M.run ~max_steps:10 ~observer:(fun _ -> ()) m);
         let expected = (v land 0xFF00_FFFF) lor (b lsl 16) in
         m.M.gpr.(4) = expected);
    prop "sign extension of loads"
      (QCheck.int_bound 0xFF)
      (fun byte ->
         let items =
           [ Asm.I (Insn.Store (Insn.Sb, 0, 1, 2));
             Asm.I (Insn.Load (Insn.Lbs, 3, 1, 0));
             Asm.I (Insn.Load (Insn.Lbz, 4, 1, 0));
             Asm.I (Insn.Nop 1) ]
         in
         let m = M.create () in
         M.load_image m (Asm.assemble { Asm.origin = code_base; items });
         M.set_pc m code_base;
         m.M.gpr.(1) <- 0x8000; m.M.gpr.(2) <- byte;
         ignore (M.run ~max_steps:10 ~observer:(fun _ -> ()) m);
         m.M.gpr.(3) = U.sext8 byte && m.M.gpr.(4) = U.zext8 byte);
    prop "execution is deterministic" alu_gen
      (fun (op, a, b) ->
         let run () =
           let m = exec1 ~regs:[ (1, a); (2, b) ] (Insn.Alu (op, 3, 1, 2)) in
           (m.M.gpr.(3), m.M.sr)
         in
         run () = run ());
    prop "r0 never changes" alu_gen
      (fun (op, a, b) ->
         let m = exec1 ~regs:[ (1, a); (2, b) ] (Insn.Alu (op, 0, 1, 2)) in
         m.M.gpr.(0) = 0);
  ]

let () =
  Alcotest.run "machine-properties" [ ("differential", tests) ]
