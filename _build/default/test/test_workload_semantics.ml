(* End-to-end semantic oracles for the workload programs: each benchmark's
   architectural result is recomputed in OCaml and compared against the
   memory image the simulated OR1200 leaves behind. This cross-checks the
   whole substrate — assembler, encoder, machine semantics — against an
   independent model, workload by workload. *)

module M = Cpu.Machine
let data = Workloads.Rt.data_base

(* Run a workload to completion and return the machine. *)
let finish name =
  let w = Option.get (Workloads.Suite.by_name name) in
  let m = M.create ~tick_period:w.tick_period () in
  M.load_image m w.image;
  M.set_pc m w.entry;
  (match M.run ~max_steps:400_000 ~observer:(fun _ -> ()) m with
   | `Halted M.Exit -> ()
   | _ -> Alcotest.fail (name ^ " did not exit cleanly"));
  m

let word m off = Cpu.Memory.read32 m.M.mem (data + off)

(* ---- parser: token statistics over the embedded text ---- *)

let test_parser () =
  let text = "the quick brown fox jumps over 13 lazy dogs; 42 times each day." in
  let is_sep c = c = ' ' || c = ';' || c = '.' in
  let words = ref 0 and digits = ref 0 and seps = ref 0 in
  let in_word = ref false in
  String.iter
    (fun c ->
       if is_sep c then begin incr seps; in_word := false end
       else begin
         if not !in_word then incr words;
         in_word := true;
         if c >= '0' && c <= '9' then incr digits
       end)
    text;
  let m = finish "parser" in
  (* The scan leaves its counters in r5 (words), r6 (digits), r7 (seps). *)
  Alcotest.(check int) "word count" !words m.M.gpr.(5);
  Alcotest.(check int) "digit count" !digits m.M.gpr.(6);
  Alcotest.(check int) "separator count" !seps m.M.gpr.(7)

(* ---- mcf: linked-list sums before and after unlinking ---- *)

let test_mcf () =
  let value i = ((i * 73) + 9) land 0x3FFF in
  let full = List.init 16 value |> List.fold_left ( + ) 0 in
  (* unlink removes every other node starting with node 1 *)
  let thinned =
    List.init 16 (fun i -> i)
    |> List.filter (fun i -> i mod 2 = 0)
    |> List.fold_left (fun acc i -> acc + value i) 0
  in
  ignore full;
  let m = finish "mcf" in
  (* The final traversal (after unlink) stores at data+1028. *)
  Alcotest.(check int) "sum after unlink" thinned (word m 1028)

(* ---- gzip: the copied window verifies halfword-for-halfword ---- *)

let test_gzip () =
  let m = finish "gzip" in
  Alcotest.(check int) "all 12 halfword compares match" 12 (word m 1032)

(* ---- bitcount: three algorithms agree with the OCaml popcount ---- *)

let test_bitcount () =
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  (* Replicate the workload's LCG stream. *)
  let seed = ref 0x1357_9BDF in
  let mult = 0x41C6_4E6D in
  let values =
    List.init 10 (fun _ ->
        seed := Util.U32.add (Util.U32.mul !seed mult) 0x3039;
        !seed)
  in
  let full = List.fold_left (fun a v -> a + popcount v) 0 values in
  let low16 = List.fold_left (fun a v -> a + popcount (v land 0xFFFF)) 0 values in
  let m = finish "bitcount" in
  Alcotest.(check int) "shift method" full (word m 1064);
  Alcotest.(check int) "kernighan method" full (word m 1068);
  Alcotest.(check int) "table method (low 16 bits)" low16 (word m 1072)

(* ---- pi: the Leibniz partial sum approximates pi in Q24 ---- *)

let test_pi () =
  let m = finish "pi" in
  let approx = float_of_int (word m 1056) /. 16777216.0 in
  Alcotest.(check bool)
    (Printf.sprintf "pi approx %.4f" approx) true
    (Float.abs (approx -. Float.pi) < 0.05)

(* ---- ammp: the accumulated potential matches the OCaml model ---- *)

let test_ammp () =
  let n = 12 in
  let x i = ((i * 37) + 5) land 0xFFF and y i = ((i * 91) + 11) land 0xFFF in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dx = Util.U32.sub (x i) (x j) and dy = Util.U32.sub (y i) (y j) in
      let d2 = Util.U32.add (Util.U32.mul dx dx) (Util.U32.mul dy dy) in
      expected := Util.U32.add !expected (d2 lsr 4)
    done
  done;
  let m = finish "ammp" in
  Alcotest.(check int) "potential" !expected (word m 1024)

(* ---- vpr: the MAC-accumulated routing cost matches ---- *)

let test_vpr () =
  let grid = 6 in
  let congestion idx = ((idx * 59) + 3) land 0xFFF in
  let acc = ref 0 in
  for x = 0 to grid - 1 do
    for y = 0 to grid - 1 do
      let c = congestion ((x * grid) + y) in
      let weight = x + (2 * y) + 1 in
      acc := !acc + (c * weight) + (c * 2) (* the mac plus the maci 2 *)
    done
  done;
  let m = finish "vpr" in
  Alcotest.(check int) "weighted congestion" (!acc land 0xFFFF_FFFF) (word m 1048)

(* ---- basicmath: gcd by repeated subtraction leaves r5 = gcd ---- *)

let test_basicmath_gcd () =
  let rec gcd a b = if a = b then a else if a > b then gcd (a - b) b else gcd a (b - a) in
  ignore (gcd 4 2);
  let m = finish "basicmath" in
  (* The last carry block leaves its sums; the earlier gcd blocks have
     been overwritten, so check the final machine invariantly: the run
     finished and r0 stayed zero. The gcd itself is covered by a direct
     mini-program below. *)
  Alcotest.(check int) "r0 zero" 0 m.M.gpr.(0);
  (* Direct gcd check with the same code shape. *)
  let open Isa.Asm.Build in
  let items =
    List.concat
      [ Workloads.Rt.prologue;
        li32 3 462; li32 4 1071;
        [ label "g";
          sfeq 3 4; bf "done"; nop;
          sfgtu 3 4; bf "suba"; nop;
          sub 4 4 3; j "g"; nop;
          label "suba"; sub 3 3 4; j "g"; nop;
          label "done"; add 5 3 0 ];
        Workloads.Rt.exit_program ]
  in
  let w = Workloads.Rt.build ~name:"gcd-oracle" items in
  let m = M.create () in
  M.load_image m w.image;
  M.set_pc m w.entry;
  ignore (M.run ~max_steps:10_000 ~observer:(fun _ -> ()) m);
  Alcotest.(check int) "gcd(462, 1071)" (gcd 462 1071) m.M.gpr.(5)

(* ---- fft: the spectrum came out non-trivial and bounded ---- *)

let test_fft_spectrum () =
  let m = finish "fft" in
  let nonzero = ref 0 in
  for k = 0 to 7 do
    let v = word m (1920 + (k * 4)) in
    if v <> 0 then incr nonzero
  done;
  Alcotest.(check bool) "spectrum has energy" true (!nonzero >= 4)

(* ---- hello: the message bytes landed verbatim ---- *)

let test_hello () =
  let m = finish "helloworld" in
  let message = "Hello, world!\n" in
  String.iteri
    (fun i c ->
       Alcotest.(check int)
         (Printf.sprintf "byte %d" i)
         (Char.code c)
         (Cpu.Memory.read8 m.M.mem (data + 2048 + i)))
    message

(* ---- crafty: popcount loop agrees with the OCaml popcount ---- *)

let test_crafty_popcount () =
  (* The last popcount block leaves its count in r6. *)
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x
  in
  let m = finish "crafty" in
  ignore (popcount 0);
  (* r9 holds the final lsb_scan count for board 0x12481248. *)
  Alcotest.(check int) "lsb scan count" (popcount 0x1248_1248) m.M.gpr.(9)

let () =
  Alcotest.run "workload-semantics"
    [ ("oracles",
       [ Alcotest.test_case "parser" `Quick test_parser;
         Alcotest.test_case "mcf" `Quick test_mcf;
         Alcotest.test_case "gzip" `Quick test_gzip;
         Alcotest.test_case "bitcount" `Quick test_bitcount;
         Alcotest.test_case "pi" `Quick test_pi;
         Alcotest.test_case "ammp" `Quick test_ammp;
         Alcotest.test_case "vpr" `Quick test_vpr;
         Alcotest.test_case "basicmath gcd" `Quick test_basicmath_gcd;
         Alcotest.test_case "fft spectrum" `Quick test_fft_spectrum;
         Alcotest.test_case "hello bytes" `Quick test_hello;
         Alcotest.test_case "crafty popcount" `Quick test_crafty_popcount ]) ]
