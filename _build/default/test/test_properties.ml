(* The property catalog and its matchers against constructed invariants. *)

module Expr = Invariant.Expr
module Var = Trace.Var
module Cat = Properties.Catalog

let inv point body = { Expr.point; body }
let eq a b = Expr.Cmp (Expr.Eq, a, b)

let v_post d = Expr.V (Var.post_id d)
let v_orig d = Expr.V (Var.orig_id d)
let v_insn i = Expr.V (Var.insn_id i)

let matcher id =
  (Option.get (Cat.by_id id)).Cat.matcher

let check_match pid expected invariant =
  Alcotest.(check bool)
    (pid ^ " on " ^ Expr.to_string invariant)
    expected
    ((matcher pid) invariant)

let test_catalog_structure () =
  Alcotest.(check int) "30 properties" 30 (List.length Cat.catalog);
  let ids = List.map (fun p -> p.Cat.id) Cat.catalog in
  Alcotest.(check int) "unique ids" 30
    (List.length (List.sort_uniq String.compare ids));
  let in_scope = List.filter Cat.in_scope Cat.catalog in
  (* 22 prior-work in-scope properties + the 3 new ones. *)
  Alcotest.(check int) "in scope" 25 (List.length in_scope)

let test_expectations_match_paper () =
  let expect id e =
    Alcotest.(check bool) id true ((Option.get (Cat.by_id id)).Cat.expectation = e)
  in
  expect "p18" Cat.Needs_microarch;
  expect "p24" Cat.Needs_microarch;
  expect "p10" Cat.Not_generated;
  expect "p22" Cat.Not_generated;
  expect "p25" Cat.Outside_core;
  expect "p26" Cat.Outside_core;
  expect "p27" Cat.Outside_core

let test_p2_spr_move () =
  check_match "p2" true
    (inv "l.mtspr" (eq (v_insn Var.Spr_post) (v_insn Var.Opb)));
  check_match "p2" true
    (inv "l.mfspr" (eq (v_insn Var.Spr_post) (v_insn Var.Dest)));
  check_match "p2" false
    (inv "l.add" (eq (v_post (Var.Gpr 1)) (v_post (Var.Gpr 2))))

let test_p3_exception_registers () =
  check_match "p3" true
    (inv "l.add" (eq (v_insn Var.Epcr_d) (Expr.Imm 0)));
  check_match "p3" true
    (inv "l.sys" (eq (v_post Var.Esr) (v_orig Var.Sr_full)));
  check_match "p3" false
    (inv "l.add" (eq (v_post (Var.Gpr 3)) (Expr.Imm 0)))

let test_p5_p6_memory () =
  check_match "p5" true
    (inv "l.sw" (eq (v_insn Var.Membus) (v_insn Var.Opb)));
  check_match "p5" false
    (inv "l.lwz" (eq (v_insn Var.Membus) (v_insn Var.Opb)));
  check_match "p6" true
    (inv "l.lwz" (eq (v_insn Var.Dest) (v_insn Var.Membus)));
  check_match "p6" true
    (inv "l.lbs" (eq (v_insn Var.Ext_hi) (Expr.Mul (Var.insn_id Var.Ext_sign, 0xFF_FFFF))))

let test_p7_effective_address () =
  check_match "p7" true
    (inv "l.lwz" (eq (v_insn Var.Ea) (v_insn Var.Ea_ref)));
  check_match "p7" false
    (inv "l.j" (eq (v_insn Var.Ea) (v_insn Var.Ea_ref)))

let test_p9_p14_rfe () =
  let sr_restore = inv "l.rfe" (eq (v_post Var.Sr_full) (v_orig Var.Esr)) in
  check_match "p9" true sr_restore;
  check_match "p14" true sr_restore;
  check_match "p9" false
    (inv "l.add" (eq (v_post Var.Sr_full) (v_orig Var.Esr)))

let test_p11_link_register () =
  check_match "p11" true
    (inv "l.jal"
       (eq (Expr.Bin (Expr.Minus, Var.post_id (Var.Gpr 9), Var.orig_id Var.Pc))
          (Expr.Imm 8)));
  check_match "p11" false
    (inv "l.add"
       (eq (Expr.Bin (Expr.Minus, Var.post_id (Var.Gpr 9), Var.orig_id Var.Pc))
          (Expr.Imm 8)))

let test_p12_instruction_format () =
  check_match "p12" true
    (inv "l.add" (eq (v_insn Var.Ir) (v_insn Var.Mem_at_pc)));
  check_match "p12" true
    (inv "l.ori" (eq (v_insn Var.Opcode) (Expr.Imm 0x2A)))

let test_p15_register_framing () =
  check_match "p15" true
    (inv "l.sw" (eq (v_post (Var.Gpr 5)) (v_orig (Var.Gpr 5))));
  check_match "p15" false
    (inv "l.sw" (eq (v_post (Var.Gpr 5)) (v_orig (Var.Gpr 6))))

let test_p17_vector_constant () =
  check_match "p17" true
    (inv "l.sys" (eq (v_post Var.Pc) (Expr.Imm 0xC00)));
  check_match "p17" true
    (inv "l.sys" (eq (v_insn Var.Vec) (Expr.Imm 0xC00)));
  check_match "p17" false
    (inv "l.add" (eq (v_post Var.Pc) (Expr.Imm 0x2040)))

let test_p19_supervisor_spr () =
  check_match "p19" true
    (inv "l.mtspr" (eq (v_post Var.Sm) (Expr.Imm 1)));
  check_match "p19" false
    (inv "l.add" (eq (v_post Var.Sm) (Expr.Imm 1)))

let test_p28_flag_products () =
  check_match "p28" true
    (inv "l.sfleu" (Expr.Cmp (Expr.Ge, v_insn Var.Prod_u, Expr.Imm 0)));
  check_match "p28" true
    (inv "l.sfeq" (eq (v_insn Var.Cmpz) (v_post Var.Sf)));
  check_match "p28" false
    (inv "l.add" (Expr.Cmp (Expr.Ge, v_insn Var.Prod_u, Expr.Imm 0)))

let test_p29_address_calculation () =
  check_match "p29" true
    (inv "l.add" (eq (v_post (Var.Gpr 0)) (Expr.Imm 0)));
  check_match "p29" true
    (inv "l.extws" (eq (v_insn Var.Dest) (v_insn Var.Opa)))

let test_p30_link_framing () =
  check_match "p30" true
    (inv "l.add" (eq (v_post (Var.Gpr 9)) (v_orig (Var.Gpr 9))));
  check_match "p30" false
    (inv "l.jal" (eq (v_post (Var.Gpr 9)) (v_orig (Var.Gpr 9))))

let test_evaluate () =
  let sci_b12 =
    [ inv "l.mtspr" (eq (v_insn Var.Spr_post) (v_insn Var.Opb)) ]
  in
  let inferred =
    [ inv "l.rfe" (eq (v_post Var.Sr_full) (v_orig Var.Esr)) ]
  in
  let coverage =
    Cat.evaluate ~identified:[ ("b12", sci_b12) ] ~inferred
  in
  let find id = List.find (fun c -> c.Cat.property.Cat.id = id) coverage in
  Alcotest.(check bool) "p2 from b12" true (find "p2").Cat.from_identification;
  Alcotest.(check (list string)) "bug attribution" [ "b12" ]
    (find "p2").Cat.found_by_bugs;
  Alcotest.(check bool) "p9 from inference" true (find "p9").Cat.from_inference;
  Alcotest.(check bool) "p9 not from identification" false
    (find "p9").Cat.from_identification

let () =
  Alcotest.run "properties"
    [ ("catalog",
       [ Alcotest.test_case "structure" `Quick test_catalog_structure;
         Alcotest.test_case "expectations" `Quick test_expectations_match_paper ]);
      ("matchers",
       [ Alcotest.test_case "p2" `Quick test_p2_spr_move;
         Alcotest.test_case "p3" `Quick test_p3_exception_registers;
         Alcotest.test_case "p5/p6" `Quick test_p5_p6_memory;
         Alcotest.test_case "p7" `Quick test_p7_effective_address;
         Alcotest.test_case "p9/p14" `Quick test_p9_p14_rfe;
         Alcotest.test_case "p11" `Quick test_p11_link_register;
         Alcotest.test_case "p12" `Quick test_p12_instruction_format;
         Alcotest.test_case "p15" `Quick test_p15_register_framing;
         Alcotest.test_case "p17" `Quick test_p17_vector_constant;
         Alcotest.test_case "p19" `Quick test_p19_supervisor_spr;
         Alcotest.test_case "p28" `Quick test_p28_flag_products;
         Alcotest.test_case "p29" `Quick test_p29_address_calculation;
         Alcotest.test_case "p30" `Quick test_p30_link_framing ]);
      ("coverage",
       [ Alcotest.test_case "evaluate" `Quick test_evaluate ]) ]
