(* Assertion-triggered recovery: halt and exception-to-software policies,
   livelock protection, recovery-exception entry state. *)

open Isa
module M = Cpu.Machine
module Rec = Assertions.Recovery

let code_base = 0x2000
let vector = 0x800

let gpr0_assertions =
  Assertions.Ovl.of_invariants
    (List.map
       (fun point ->
          { Invariant.Expr.point;
            body = Invariant.Expr.Cmp
                (Invariant.Expr.Eq,
                 Invariant.Expr.V (Trace.Var.post_id (Trace.Var.Gpr 0)),
                 Invariant.Expr.Imm 0) })
       [ "l.add"; "l.addi"; "l.sub" ])

let machine_with ?(handler = []) insns =
  let b10 = Option.get (Bugs.Table1.by_id "b10") in
  let m = M.create ~fault:b10.Bugs.Registry.fault () in
  let main =
    { Asm.origin = code_base;
      items = List.map (fun i -> Asm.I i) insns @ [ Asm.I (Insn.Nop 1) ] }
  in
  M.load_image m (Asm.assemble main);
  if handler <> [] then
    M.load_image m (Asm.assemble { Asm.origin = vector; items = handler });
  M.set_pc m code_base;
  m

let poison = Insn.[ Alui (Addi, 3, 0, 41); Alu (Add, 0, 3, 3); Alui (Addi, 4, 0, 1) ]

let test_halt_policy () =
  let m = machine_with poison in
  let o = Rec.run ~policy:Rec.Halt gpr0_assertions m in
  Alcotest.(check int) "one firing" 1 (List.length o.firings);
  Alcotest.(check int) "no recovery" 0 o.recoveries;
  Alcotest.(check bool) "assertion halt" true (o.halted = `Assertion_halt)

let test_exception_policy_recovers () =
  let handler = Asm.Build.[ sub 0 0 0; rfe ] in
  let m = machine_with ~handler poison in
  let o = Rec.run ~policy:(Rec.Exception vector) gpr0_assertions m in
  Alcotest.(check int) "recovered once" 1 o.recoveries;
  Alcotest.(check bool) "finished" true (o.halted = `Machine M.Exit);
  Alcotest.(check int) "r0 repaired" 0 m.M.gpr.(0);
  (* the post-recovery addi saw the repaired r0 *)
  Alcotest.(check int) "clean arithmetic afterwards" 1 m.M.gpr.(4)

let test_clean_run_untouched () =
  let m = machine_with Insn.[ Alui (Addi, 3, 0, 5); Alu (Add, 4, 3, 3) ] in
  let o = Rec.run ~policy:Rec.Halt gpr0_assertions m in
  Alcotest.(check int) "no firings" 0 (List.length o.firings);
  Alcotest.(check bool) "normal exit" true (o.halted = `Machine M.Exit)

let test_recovery_entry_state () =
  let m = machine_with [] in
  m.M.sr <- Isa.Spr.Sr_bits.reset lor (1 lsl Isa.Spr.Sr_bits.tee);
  let before_sr = m.M.sr in
  m.M.pc <- 0x2040;
  Rec.enter_recovery m ~vector;
  Alcotest.(check int) "at vector" vector m.M.pc;
  Alcotest.(check int) "ESR saved" before_sr m.M.esr;
  Alcotest.(check int) "EPCR is the resume point" 0x2040 m.M.epcr;
  Alcotest.(check int) "supervisor" 1
    (Isa.Spr.Sr_bits.get m.M.sr Isa.Spr.Sr_bits.sm);
  Alcotest.(check int) "interrupts masked" 0
    (Isa.Spr.Sr_bits.get m.M.sr Isa.Spr.Sr_bits.tee)

let test_max_recoveries_bounds_livelock () =
  (* A handler that does NOT repair r0: the assertion refires after each
     cooldown window until the recovery budget runs out. *)
  let handler = Asm.Build.[ rfe; nop ] in
  let m = machine_with ~handler
      (Insn.[ Alui (Addi, 3, 0, 41); Alu (Add, 0, 3, 3) ]
       @ List.concat (List.init 200 (fun _ -> [ Insn.Alui (Insn.Addi, 5, 3, 1) ])))
  in
  let o =
    Rec.run ~policy:(Rec.Exception vector) ~max_recoveries:3 ~cooldown:2
      gpr0_assertions m
  in
  Alcotest.(check int) "budget respected" 3 o.recoveries;
  Alcotest.(check bool) "gave up by halting" true (o.halted = `Assertion_halt)

let test_cooldown_suppresses_rearm () =
  (* With a huge cooldown, a non-repairing handler still lets the program
     reach the end: one recovery, no refire. *)
  let handler = Asm.Build.[ rfe; nop ] in
  let m = machine_with ~handler
      (Insn.[ Alui (Addi, 3, 0, 41); Alu (Add, 0, 3, 3) ]
       @ List.init 20 (fun _ -> Insn.Alui (Insn.Addi, 5, 3, 1)))
  in
  let o =
    Rec.run ~policy:(Rec.Exception vector) ~cooldown:10_000
      gpr0_assertions m
  in
  Alcotest.(check int) "single recovery" 1 o.recoveries;
  Alcotest.(check bool) "program completed" true (o.halted = `Machine M.Exit)

let () =
  Alcotest.run "recovery"
    [ ("recovery",
       [ Alcotest.test_case "halt policy" `Quick test_halt_policy;
         Alcotest.test_case "exception recovers" `Quick test_exception_policy_recovers;
         Alcotest.test_case "clean run" `Quick test_clean_run_untouched;
         Alcotest.test_case "entry state" `Quick test_recovery_entry_state;
         Alcotest.test_case "recovery budget" `Quick test_max_recoveries_bounds_livelock;
         Alcotest.test_case "cooldown" `Quick test_cooldown_suppresses_rearm ]) ]
