test/test_trace.ml: Alcotest Array Asm Cpu Insn Isa List Spr Trace Util
