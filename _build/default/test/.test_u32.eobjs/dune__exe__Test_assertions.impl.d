test/test_assertions.ml: Alcotest Array Assertions Invariant List String Trace
