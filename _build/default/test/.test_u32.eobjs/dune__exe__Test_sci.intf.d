test/test_sci.mli:
