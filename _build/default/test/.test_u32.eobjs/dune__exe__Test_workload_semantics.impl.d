test/test_workload_semantics.ml: Alcotest Array Char Cpu Float Isa List Option Printf String Util Workloads
