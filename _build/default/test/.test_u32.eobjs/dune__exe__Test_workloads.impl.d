test/test_workloads.ml: Alcotest Array Cpu Hashtbl Isa List Option String Trace Workloads
