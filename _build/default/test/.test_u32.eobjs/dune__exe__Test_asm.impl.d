test/test_asm.ml: Alcotest Asm Code Insn Isa List Util
