test/test_fault.ml: Alcotest Array Asm Cpu Insn Isa List Spr
