test/test_ml.mli:
