test/test_io.ml: Alcotest Daikon Filename Fun Invariant List Option String Sys Trace Workloads
