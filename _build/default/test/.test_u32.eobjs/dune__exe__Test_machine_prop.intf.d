test/test_machine_prop.mli:
