test/test_workload_semantics.mli:
