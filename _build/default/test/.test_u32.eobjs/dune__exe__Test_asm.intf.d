test/test_asm.mli:
