test/test_integration.ml: Alcotest Assertions Bugs Invariant Invopt Lazy List Sci Scifinder_core
