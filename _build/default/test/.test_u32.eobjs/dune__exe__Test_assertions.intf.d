test/test_assertions.mli:
