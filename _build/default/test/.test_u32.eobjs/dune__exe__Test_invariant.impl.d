test/test_invariant.ml: Alcotest Array Invariant List Trace
