test/test_daikon.mli:
