test/test_prng.ml: Alcotest Array List Util
