test/test_shape_oracle.ml: Alcotest Invariant List Scifinder_core Trace
