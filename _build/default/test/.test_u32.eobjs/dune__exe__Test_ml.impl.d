test/test_ml.ml: Alcotest Array List Ml Util
