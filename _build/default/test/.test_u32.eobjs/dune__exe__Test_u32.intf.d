test/test_u32.mli:
