test/test_bugs.ml: Alcotest Array Bugs Cpu Isa List Option String Trace Workloads
