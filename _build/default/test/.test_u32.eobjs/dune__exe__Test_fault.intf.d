test/test_fault.mli:
