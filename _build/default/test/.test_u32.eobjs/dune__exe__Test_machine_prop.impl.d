test/test_machine_prop.ml: Alcotest Array Asm Cpu Insn Isa List Option QCheck QCheck_alcotest Spr Util
