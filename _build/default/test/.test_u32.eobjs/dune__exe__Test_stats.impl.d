test/test_stats.ml: Alcotest Array Util
