test/test_isa.ml: Alcotest Code Insn Isa List Printf QCheck QCheck_alcotest String
