test/test_shape_oracle.mli:
