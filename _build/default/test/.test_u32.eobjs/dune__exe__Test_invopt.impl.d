test/test_invopt.ml: Alcotest Daikon Invariant Invopt List Option Sci Trace Workloads
