test/test_memory.ml: Alcotest Cpu
