test/test_machine.ml: Alcotest Array Asm Cpu Insn Isa List Spr Util
