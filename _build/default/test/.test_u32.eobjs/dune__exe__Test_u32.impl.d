test/test_u32.ml: Alcotest Int64 QCheck QCheck_alcotest Util
