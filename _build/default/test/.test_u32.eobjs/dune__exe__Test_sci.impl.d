test/test_sci.ml: Alcotest Array Bugs Daikon Invariant Lazy List Option Sci String Trace Workloads
