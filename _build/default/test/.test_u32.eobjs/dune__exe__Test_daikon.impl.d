test/test_daikon.ml: Alcotest Array Daikon Invariant List Trace
