test/test_bugs.mli:
