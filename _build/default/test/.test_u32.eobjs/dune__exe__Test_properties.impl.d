test/test_properties.ml: Alcotest Invariant List Option Properties String Trace
