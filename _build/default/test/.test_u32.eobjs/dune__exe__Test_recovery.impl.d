test/test_recovery.ml: Alcotest Array Asm Assertions Bugs Cpu Insn Invariant Isa List Option Trace
