test/test_invopt.mli:
