(* Machine learning: matrices, the elastic-net logistic regression, PCA. *)

module Mat = Ml.Matrix

let feq = Alcotest.(check (float 1e-6))

(* ---- matrices ---- *)

let test_matrix_basics () =
  let m = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  feq "get" 3.0 (Mat.get m 1 0);
  Alcotest.(check (array (float 1e-9))) "row" [| 3.0; 4.0 |] (Mat.row m 1);
  Alcotest.(check (array (float 1e-9))) "column" [| 2.0; 4.0 |] (Mat.column m 1);
  let t = Mat.transpose m in
  feq "transpose" 2.0 (Mat.get t 1 0)

let test_matrix_mul () =
  let a = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 4.0 |] ] in
  let b = Mat.of_rows [ [| 5.0; 6.0 |]; [| 7.0; 8.0 |] ] in
  let c = Mat.mul a b in
  feq "c00" 19.0 (Mat.get c 0 0);
  feq "c01" 22.0 (Mat.get c 0 1);
  feq "c10" 43.0 (Mat.get c 1 0);
  feq "c11" 50.0 (Mat.get c 1 1)

let test_standardize () =
  let m = Mat.of_rows [ [| 0.0 |]; [| 10.0 |] ] in
  let s, (means, stds) = Mat.standardize m in
  feq "mean" 5.0 means.(0);
  feq "std" 5.0 stds.(0);
  feq "low" (-1.0) (Mat.get s 0 0);
  feq "high" 1.0 (Mat.get s 1 0)

let test_covariance () =
  let m = Mat.of_rows [ [| 1.0; 2.0 |]; [| 3.0; 6.0 |]; [| 5.0; 10.0 |] ] in
  let c = Mat.covariance m in
  feq "var x" 4.0 (Mat.get c 0 0);
  feq "cov xy" 8.0 (Mat.get c 0 1);
  feq "symmetric" (Mat.get c 0 1) (Mat.get c 1 0)

(* ---- logistic regression ---- *)

(* Linearly separable data: feature 0 decides the class, features 1-2 are
   noise. *)
let separable_data ?(n = 120) ?(noise_features = 2) seed =
  let rng = Util.Prng.create seed in
  let rows = ref [] and ys = ref [] in
  for _ = 1 to n do
    let y = Util.Prng.bool rng in
    let signal = if y then 1.0 +. Util.Prng.float rng else -1.0 -. Util.Prng.float rng in
    let noise = Array.init noise_features (fun _ -> Util.Prng.float rng -. 0.5) in
    rows := Array.append [| signal |] noise :: !rows;
    ys := (if y then 1.0 else 0.0) :: !ys
  done;
  (Mat.of_rows (List.rev !rows), Array.of_list (List.rev !ys))

let test_logreg_separable () =
  let x, y = separable_data 1 in
  let model = Ml.Logreg.fit ~lambda:0.01 x y in
  let acc = Ml.Logreg.accuracy model x y in
  Alcotest.(check bool) "fits separable data" true (acc > 0.95)

let test_logreg_signal_feature_dominates () =
  let x, y = separable_data 2 in
  let model = Ml.Logreg.fit ~lambda:0.05 x y in
  let nz = Ml.Logreg.nonzero_features model in
  Alcotest.(check bool) "feature 0 selected" true
    (List.exists (fun (j, b) -> j = 0 && b > 0.0) nz)

let test_lasso_kills_noise () =
  let x, y = separable_data ~noise_features:6 3 in
  (* Strong l1 at alpha = 1. *)
  let model = Ml.Logreg.fit ~alpha:1.0 ~lambda:0.15 x y in
  let nz = Ml.Logreg.nonzero_features model in
  Alcotest.(check bool) "sparse" true (List.length nz <= 2);
  Alcotest.(check bool) "keeps the signal" true
    (List.exists (fun (j, _) -> j = 0) nz)

let test_lambda_max_zeroes_model () =
  let x, y = separable_data 4 in
  let lmax = Ml.Logreg.lambda_max x y ~alpha:1.0 in
  let model = Ml.Logreg.fit ~alpha:1.0 ~lambda:(lmax *. 1.05) x y in
  Alcotest.(check int) "all zero at lambda_max" 0
    (List.length (Ml.Logreg.nonzero_features model))

let test_lambda_path_monotone () =
  let x, y = separable_data 5 in
  let path = Ml.Logreg.lambda_path x y ~alpha:0.5 ~count:10 in
  Alcotest.(check int) "length" 10 (List.length path);
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly decreasing" true (decreasing path)

let test_predict_proba_bounds () =
  let x, y = separable_data 6 in
  let model = Ml.Logreg.fit ~lambda:0.01 x y in
  for i = 0 to x.Mat.rows - 1 do
    let p = Ml.Logreg.predict_proba model (Mat.row x i) in
    Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0)
  done

let test_cross_validation () =
  let x, y = separable_data ~n:90 7 in
  let lambda, acc, table = Ml.Logreg.cross_validate ~folds:3 ~seed:7 x y in
  Alcotest.(check bool) "good cv accuracy" true (acc > 0.85);
  Alcotest.(check bool) "lambda from the path" true
    (List.mem_assoc lambda table)

let test_ridge_limit_dense () =
  (* alpha = 0: pure ridge, no coefficient is exactly zeroed. *)
  let x, y = separable_data ~noise_features:3 8 in
  let model = Ml.Logreg.fit ~alpha:0.0 ~lambda:0.05 x y in
  Alcotest.(check int) "all features kept" 4
    (List.length (Ml.Logreg.nonzero_features model))

(* ---- PCA ---- *)

let test_jacobi_diagonal () =
  let m = Mat.of_rows [ [| 3.0; 0.0 |]; [| 0.0; 7.0 |] ] in
  let eigenvalues, _ = Ml.Pca.jacobi m ~max_sweeps:50 in
  let sorted = Array.copy eigenvalues in
  Array.sort compare sorted;
  feq "small" 3.0 sorted.(0);
  feq "large" 7.0 sorted.(1)

let test_jacobi_known_matrix () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3. *)
  let m = Mat.of_rows [ [| 2.0; 1.0 |]; [| 1.0; 2.0 |] ] in
  let eigenvalues, _ = Ml.Pca.jacobi m ~max_sweeps:50 in
  let sorted = Array.copy eigenvalues in
  Array.sort compare sorted;
  feq "lambda1" 1.0 sorted.(0);
  feq "lambda2" 3.0 sorted.(1)

let test_pca_finds_correlated_direction () =
  (* Points along y = x: the first component explains almost everything. *)
  let rng = Util.Prng.create 11 in
  let rows =
    List.init 60 (fun _ ->
        let t = Util.Prng.float rng *. 10.0 in
        let jitter = (Util.Prng.float rng -. 0.5) *. 0.01 in
        [| t; t +. jitter |])
  in
  let pca = Ml.Pca.fit ~k:2 (Mat.of_rows rows) in
  let explained = Ml.Pca.explained_variance pca in
  Alcotest.(check bool) "first component dominates" true (explained.(0) > 0.99)

let test_pca_projection_dimension () =
  let pca = Ml.Pca.fit ~k:2 (Mat.of_rows [ [| 1.0; 2.0; 3.0 |];
                                           [| 2.0; 4.0; 5.0 |];
                                           [| 3.0; 5.0; 9.0 |];
                                           [| 4.0; 9.0; 11.0 |] ]) in
  let p = Ml.Pca.project pca [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "two coordinates" 2 (Array.length p)

let test_separation_metric () =
  let close = [ [| 0.0; 0.0 |]; [| 0.1; 0.0 |]; [| 5.0; 0.0 |]; [| 5.1; 0.0 |] ] in
  let labels = [ 0; 0; 1; 1 ] in
  let sep = Ml.Pca.separation close labels in
  Alcotest.(check bool) "well separated" true (sep > 10.0);
  (* Interleaved labels over the same points: classes overlap fully. *)
  let sep2 = Ml.Pca.separation close [ 0; 1; 0; 1 ] in
  Alcotest.(check bool) "overlapping clusters score lower" true (sep2 < 1.0)

let () =
  Alcotest.run "ml"
    [ ("matrix",
       [ Alcotest.test_case "basics" `Quick test_matrix_basics;
         Alcotest.test_case "mul" `Quick test_matrix_mul;
         Alcotest.test_case "standardize" `Quick test_standardize;
         Alcotest.test_case "covariance" `Quick test_covariance ]);
      ("logreg",
       [ Alcotest.test_case "separable" `Quick test_logreg_separable;
         Alcotest.test_case "signal feature" `Quick test_logreg_signal_feature_dominates;
         Alcotest.test_case "lasso sparsity" `Quick test_lasso_kills_noise;
         Alcotest.test_case "lambda_max" `Quick test_lambda_max_zeroes_model;
         Alcotest.test_case "lambda path" `Quick test_lambda_path_monotone;
         Alcotest.test_case "proba bounds" `Quick test_predict_proba_bounds;
         Alcotest.test_case "cross validation" `Quick test_cross_validation;
         Alcotest.test_case "ridge dense" `Quick test_ridge_limit_dense ]);
      ("pca",
       [ Alcotest.test_case "jacobi diagonal" `Quick test_jacobi_diagonal;
         Alcotest.test_case "jacobi known" `Quick test_jacobi_known_matrix;
         Alcotest.test_case "correlated direction" `Quick test_pca_finds_correlated_direction;
         Alcotest.test_case "projection dim" `Quick test_pca_projection_dimension;
         Alcotest.test_case "separation" `Quick test_separation_metric ]) ]
