(* Memory subsystem: big-endian layout, bounds, regions. *)

module Mem = Cpu.Memory

let test_big_endian () =
  let m = Mem.create () in
  Mem.write32 m 0x100 0x11223344;
  Alcotest.(check int) "byte 0" 0x11 (Mem.read8 m 0x100);
  Alcotest.(check int) "byte 3" 0x44 (Mem.read8 m 0x103);
  Alcotest.(check int) "half 0" 0x1122 (Mem.read16 m 0x100);
  Alcotest.(check int) "half 2" 0x3344 (Mem.read16 m 0x102)

let test_byte_write_updates_word () =
  let m = Mem.create () in
  Mem.write32 m 0x200 0xAABBCCDD;
  Mem.write8 m 0x201 0x00;
  Alcotest.(check int) "patched" 0xAA00CCDD (Mem.read32 m 0x200)

let test_half_write () =
  let m = Mem.create () in
  Mem.write16 m 0x300 0xBEEF;
  Alcotest.(check int) "hi byte" 0xBE (Mem.read8 m 0x300);
  Alcotest.(check int) "lo byte" 0xEF (Mem.read8 m 0x301)

let test_truncation () =
  let m = Mem.create () in
  Mem.write8 m 0 0x1FF;
  Alcotest.(check int) "byte masked" 0xFF (Mem.read8 m 0);
  Mem.write16 m 4 0x12345;
  Alcotest.(check int) "half masked" 0x2345 (Mem.read16 m 4)

let test_bus_error () =
  let m = Mem.create ~size:0x1000 () in
  Alcotest.check_raises "read past end" (Mem.Bus_error 0x1000)
    (fun () -> ignore (Mem.read32 m 0x1000));
  Alcotest.check_raises "straddling end" (Mem.Bus_error 0xFFE)
    (fun () -> ignore (Mem.read32 m 0xFFE));
  Alcotest.check_raises "negative" (Mem.Bus_error (-4))
    (fun () -> ignore (Mem.read32 m (-4)))

let test_peek_never_raises () =
  let m = Mem.create ~size:0x1000 () in
  Alcotest.(check int) "oob" 0 (Mem.peek32 m 0x10_0000);
  Alcotest.(check int) "misaligned" 0 (Mem.peek32 m 2);
  Mem.write32 m 8 42;
  Alcotest.(check int) "valid" 42 (Mem.peek32 m 8)

let test_regions () =
  Alcotest.(check bool) "low is SRAM" true (Mem.region_of 0x1000 = Mem.Sram);
  Alcotest.(check bool) "high is SDRAM" true
    (Mem.region_of Mem.sdram_base = Mem.Sdram);
  Alcotest.(check bool) "boundary minus one" true
    (Mem.region_of (Mem.sdram_base - 1) = Mem.Sram)

let test_load_image () =
  let m = Mem.create () in
  Mem.load_image m [ (0x10, 0xAAAAAAAA); (0x14, 0x55555555) ];
  Alcotest.(check int) "first" 0xAAAAAAAA (Mem.read32 m 0x10);
  Alcotest.(check int) "second" 0x55555555 (Mem.read32 m 0x14)

let () =
  Alcotest.run "memory"
    [ ("memory",
       [ Alcotest.test_case "big endian" `Quick test_big_endian;
         Alcotest.test_case "byte write" `Quick test_byte_write_updates_word;
         Alcotest.test_case "half write" `Quick test_half_write;
         Alcotest.test_case "truncation" `Quick test_truncation;
         Alcotest.test_case "bus error" `Quick test_bus_error;
         Alcotest.test_case "peek" `Quick test_peek_never_raises;
         Alcotest.test_case "regions" `Quick test_regions;
         Alcotest.test_case "load image" `Quick test_load_image ]) ]
