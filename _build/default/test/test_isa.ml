(* Instruction set: encode/decode roundtrips (unit + property), accessor
   consistency, and mnemonic coverage. *)

open Isa

let reg_gen = QCheck.int_bound 31
let imm16_gen = QCheck.int_bound 0xFFFF
let disp26_gen = QCheck.int_bound 0x3FF_FFFF
let l6_gen = QCheck.int_bound 63

(* A generator covering every instruction format. *)
let insn_gen : Insn.t QCheck.arbitrary =
  let open Insn in
  let open QCheck.Gen in
  let reg = int_bound 31 and imm = int_bound 0xFFFF in
  let alu_op = oneofl [ Add; Addc; Sub; And; Or; Xor; Mul; Mulu; Div; Divu;
                        Sll; Srl; Sra; Ror ] in
  let alui_op = oneofl [ Addi; Addic; Andi; Ori; Xori; Muli ] in
  let shifti_op = oneofl [ Slli; Srli; Srai; Rori ] in
  let ext_op = oneofl [ Extbs; Extbz; Exths; Exthz; Extws; Extwz ] in
  let sf_op = oneofl [ Sfeq; Sfne; Sfgtu; Sfgeu; Sfltu; Sfleu;
                       Sfgts; Sfges; Sflts; Sfles ] in
  let load_op = oneofl [ Lwz; Lws; Lbz; Lbs; Lhz; Lhs ] in
  let store_op = oneofl [ Sw; Sb; Sh ] in
  let gen =
    oneof
      [ map (fun ((op, a), (b, c)) -> Alu (op, a, b, c))
          (pair (pair alu_op reg) (pair reg reg));
        map (fun ((op, a), (b, k)) -> Alui (op, a, b, k))
          (pair (pair alui_op reg) (pair reg imm));
        map (fun ((op, a), (b, k)) -> Shifti (op, a, b, k land 63))
          (pair (pair shifti_op reg) (pair reg imm));
        map (fun (op, (a, b)) -> Ext (op, a, b)) (pair ext_op (pair reg reg));
        map (fun (op, (a, b)) -> Setflag (op, a, b)) (pair sf_op (pair reg reg));
        map (fun (op, (a, k)) -> Setflagi (op, a, k)) (pair sf_op (pair reg imm));
        map (fun ((op, a), (b, k)) -> Load (op, a, b, k))
          (pair (pair load_op reg) (pair reg imm));
        map (fun ((op, k), (a, b)) -> Store (op, k, a, b))
          (pair (pair store_op imm) (pair reg reg));
        map (fun d -> Jump d) (int_bound 0x3FF_FFFF);
        map (fun d -> Jump_link d) (int_bound 0x3FF_FFFF);
        map (fun r -> Jump_reg r) reg;
        map (fun r -> Jump_link_reg r) reg;
        map (fun d -> Branch_flag d) (int_bound 0x3FF_FFFF);
        map (fun d -> Branch_noflag d) (int_bound 0x3FF_FFFF);
        map (fun (r, k) -> Movhi (r, k)) (pair reg imm);
        map (fun ((d, a), k) -> Mfspr (d, a, k)) (pair (pair reg reg) imm);
        map (fun ((a, b), k) -> Mtspr (a, b, k)) (pair (pair reg reg) imm);
        map (fun (a, b) -> Macc (Mac, a, b)) (pair reg reg);
        map (fun (a, b) -> Macc (Msb, a, b)) (pair reg reg);
        map (fun (a, k) -> Maci (a, k)) (pair reg imm);
        map (fun r -> Macrc r) reg;
        map (fun k -> Sys k) imm;
        map (fun k -> Trap k) imm;
        return Rfe;
        map (fun k -> Nop k) imm;
      ]
  in
  QCheck.make ~print:Insn.to_string gen

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:2000 ~name gen f)

let roundtrip insn = Code.decode (Code.encode insn) = Some insn

let unit_roundtrips =
  let open Insn in
  let cases =
    [ Alu (Add, 1, 2, 3); Alu (Ror, 31, 30, 29); Alu (Divu, 0, 15, 16);
      Alui (Addi, 3, 4, 0xFFFF); Alui (Muli, 7, 8, 0x8000);
      Shifti (Rori, 5, 6, 31); Shifti (Slli, 1, 1, 0);
      Ext (Extbs, 9, 10); Ext (Extwz, 11, 12);
      Setflag (Sfgtu, 3, 4); Setflagi (Sfles, 5, 0x7FFF);
      Load (Lws, 6, 7, 0x1234); Load (Lbs, 8, 9, 0xFFFF);
      Store (Sw, 0xFFFF, 10, 11); Store (Sb, 0x0001, 12, 13);
      Jump 0x3FF_FFFF; Jump_link 0; Jump_reg 9; Jump_link_reg 17;
      Branch_flag 0x200_0000; Branch_noflag 4;
      Movhi (14, 0xDEAD); Mfspr (15, 0, 0x11); Mtspr (0, 16, 0x2801);
      Macc (Mac, 17, 18); Macc (Msb, 19, 20); Maci (21, 0xBEEF);
      Macrc 22; Sys 0x42; Trap 0x7; Rfe; Nop 1 ]
  in
  List.map
    (fun insn ->
       Alcotest.test_case (Insn.to_string insn) `Quick (fun () ->
           Alcotest.(check bool) "roundtrip" true (roundtrip insn)))
    cases

let test_decode_illegal () =
  (* Opcodes we do not implement must decode to None. *)
  List.iter
    (fun word ->
       Alcotest.(check bool)
         (Printf.sprintf "0x%08X illegal" word)
         true
         (Code.decode word = None))
    [ 0xEC00_0000;          (* opcode 0x3B *)
      0x0800_0000;          (* opcode 0x02 *)
      0x1C00_0000;          (* opcode 0x07 *)
      0x3C00_0000;          (* opcode 0x0F *)
      0xC400_0000;          (* opcode 0x31 with bad nibble 0 *)
      0xBC00_0000 lor (0x1F lsl 21) (* sf with invalid condition code *) ]

let test_mnemonic_count () =
  (* The paper's basic instruction set has 56 instructions; ours covers it
     plus the immediate set-flag forms. *)
  let n = List.length Insn.all_mnemonics in
  Alcotest.(check bool) "at least the 56 of ORBIS32 basic" true (n >= 56);
  let distinct = List.sort_uniq String.compare Insn.all_mnemonics in
  Alcotest.(check int) "no duplicates" n (List.length distinct)

let test_mnemonic_consistency () =
  (* A sampled instruction's mnemonic must be in all_mnemonics. *)
  let open Insn in
  List.iter
    (fun insn ->
       Alcotest.(check bool) (to_string insn) true
         (List.mem (mnemonic insn) all_mnemonics))
    [ Alu (Add, 1, 2, 3); Setflagi (Sfgeu, 2, 3); Load (Lhs, 1, 2, 3);
      Store (Sh, 0, 1, 2); Macc (Msb, 1, 2); Rfe; Sys 0 ]

let test_accessors () =
  let open Insn in
  Alcotest.(check (option int)) "alu dest" (Some 5) (dest_reg (Alu (Xor, 5, 1, 2)));
  Alcotest.(check (option int)) "store dest" None (dest_reg (Store (Sw, 0, 1, 2)));
  Alcotest.(check (option int)) "jal link" (Some 9) (dest_reg (Jump_link 4));
  Alcotest.(check bool) "jal delay slot" true (has_delay_slot (Jump_link 4));
  Alcotest.(check bool) "sys no delay slot" false (has_delay_slot (Sys 0));
  (match src_regs (Store (Sb, 0, 3, 7)) with
   | Some 3, Some 7 -> ()
   | _ -> Alcotest.fail "store sources");
  Alcotest.(check (option int)) "addi imm sext"
    (Some (-1)) (immediate (Alui (Addi, 1, 2, 0xFFFF)));
  Alcotest.(check (option int)) "andi imm zext"
    (Some 0xFFFF) (immediate (Alui (Andi, 1, 2, 0xFFFF)));
  Alcotest.(check (option int)) "branch disp sext"
    (Some (-1)) (immediate (Branch_flag 0x3FF_FFFF))

let test_sys_trap_distinct () =
  let sys = Code.encode (Insn.Sys 3) and trap = Code.encode (Insn.Trap 3) in
  Alcotest.(check bool) "distinct words" true (sys <> trap)

let test_store_imm_split () =
  (* Store immediates are split across the word; check a value with both
     high and low bits. *)
  let insn = Insn.Store (Insn.Sw, 0xABCD, 3, 4) in
  Alcotest.(check bool) "split roundtrip" true (roundtrip insn)

let () =
  Alcotest.run "isa"
    [ ("roundtrip-unit", unit_roundtrips);
      ("roundtrip-property",
       [ prop "random insn roundtrips" insn_gen roundtrip;
         prop "mnemonic stable under roundtrip" insn_gen (fun insn ->
             match Code.decode (Code.encode insn) with
             | Some insn' -> Insn.mnemonic insn = Insn.mnemonic insn'
             | None -> false);
         QCheck_alcotest.to_alcotest
           (QCheck.Test.make ~count:500 ~name:"decode total on random words"
              (QCheck.map (fun x -> x land 0xFFFF_FFFF) QCheck.int)
              (fun w -> match Code.decode w with Some _ | None -> true)) ]);
      ("structure",
       [ Alcotest.test_case "illegal words" `Quick test_decode_illegal;
         Alcotest.test_case "mnemonic count" `Quick test_mnemonic_count;
         Alcotest.test_case "mnemonic consistency" `Quick test_mnemonic_consistency;
         Alcotest.test_case "accessors" `Quick test_accessors;
         Alcotest.test_case "sys/trap distinct" `Quick test_sys_trap_distinct;
         Alcotest.test_case "store imm split" `Quick test_store_imm_split ]) ]

(* silence unused generator warnings for the simple generators above *)
let _ = (reg_gen, imm16_gen, disp26_gen, l6_gen)
