#!/bin/sh
# Tier-1 gate: build, test, and smoke-run the sharded miner and the
# telemetry-instrumented bench harness.
set -eu
dune build
dune runtest
# Bench smoke: mine Figure 3 on two shards with the JSONL sink attached;
# the run must leave a parseable BENCH_pipeline.json and metrics stream.
rm -f BENCH_pipeline.json BENCH_metrics.jsonl
dune exec bench/main.exe -- fig3 -j 2 --metrics
test -s BENCH_pipeline.json
test -s BENCH_metrics.jsonl
dune exec bench/check_json.exe -- BENCH_pipeline.json BENCH_metrics.jsonl
# Telemetry overhead budget: obsbench prints (and BENCH_pipeline.json
# records) the estimated null-sink overhead; the gate is < 2%.
dune exec bench/main.exe -- obsbench | tee /tmp/obsbench.out
grep -q 'null-sink overhead budget < 2%: PASS' /tmp/obsbench.out
