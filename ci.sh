#!/bin/sh
# Tier-1 gate: build, test, and smoke-run the sharded miner and the
# telemetry-instrumented bench harness.
set -eu
dune build
dune runtest
# Determinism gate: the whole suite again under randomized hash seeds.
# Invariant extraction, Figure 3 rows and snapshot bytes must not depend
# on Hashtbl iteration order ("bit-identical for every jobs >= 1").
OCAMLRUNPARAM=R dune runtest --force
# Bench smoke: mine Figure 3 on two shards with the JSONL sink attached;
# the run must leave a parseable BENCH_pipeline.json and metrics stream.
rm -f BENCH_pipeline.json BENCH_metrics.jsonl
dune exec bench/main.exe -- fig3 -j 2 --metrics
test -s BENCH_pipeline.json
test -s BENCH_metrics.jsonl
dune exec bench/check_json.exe -- BENCH_pipeline.json BENCH_metrics.jsonl
# Bench-trend gate: the synthetic-regression selftest must bite, the
# fresh headline numbers append to the history, and the latest entry
# must sit within 20% of the trailing median (fresh histories pass
# trivially).
dune exec bench/trend.exe -- selftest | tee /tmp/trend.out
grep -q 'trend gate (synthetic 20% regression flagged): PASS' /tmp/trend.out
dune exec bench/trend.exe -- record BENCH_pipeline.json
dune exec bench/trend.exe -- check | tee /tmp/trendcheck.out
grep -q 'trend gate (>20% below trailing median fails): PASS' /tmp/trendcheck.out
# Flight-recorder gate: a provenance mine must attribute at least one
# death per invariant family — candidate, killing workload, record —
# while writing both telemetry artifacts in one run.
rm -f /tmp/scif_run.jsonl /tmp/scif_run.trace.json
dune exec bin/scifinder.exe -- mine -j 2 -w helloworld -w basicmath \
  --explain "" --limit 3 --metrics /tmp/scif_run.jsonl \
  --trace-out /tmp/scif_run.trace.json | tee /tmp/explain.out
for fam in oneof mod relation diff scale; do
  grep -q "^  $fam .*killed by .*(record " /tmp/explain.out
done
# The Chrome trace must validate structurally (strict parse, consistent
# pids, non-negative timestamps/durations) and be Perfetto-loadable:
# no mine.shard span may float as a root.
dune exec bench/check_json.exe -- /tmp/scif_run.trace.json /tmp/scif_run.jsonl
! grep -q '"name":"mine.shard".*"parent":null' /tmp/scif_run.trace.json
# The report command digests the same stream: span tree, candidate
# funnel, and zero skipped lines on our own telemetry.
dune exec bin/scifinder.exe -- report /tmp/scif_run.jsonl | tee /tmp/report.out
grep -q 'pipeline.mine' /tmp/report.out
grep -q 'candidate funnel' /tmp/report.out
grep -q 'skipped lines: 0' /tmp/report.out
# Telemetry overhead budget: obsbench prints (and BENCH_pipeline.json
# records) the estimated null-sink overhead; the gate is < 2%.
dune exec bench/main.exe -- obsbench | tee /tmp/obsbench.out
grep -q 'null-sink overhead budget < 2%: PASS' /tmp/obsbench.out
# Incremental-mining gate: a warm cache run must be bit-identical to the
# cold run (invariant set + Figure 3 rows), reject damaged snapshots,
# and come in at least 5x faster.
dune exec bench/main.exe -- cachebench | tee /tmp/cachebench.out
grep -q 'cachebench gate (warm==cold, stale rejected, >=5x): PASS' /tmp/cachebench.out
# Fuzzbench gate: the fixed-seed generated corpus must reach the pinned
# minimum of new coverage points over the 17 hand-written workloads, be
# byte-identical across same-seed reruns, mine bit-identically through a
# warm snapshot cache, keep the Figure 3 convergence shape, and not
# increase identification false positives.
dune exec bench/main.exe -- fuzzbench -j 2 | tee /tmp/fuzzbench.out
grep -q 'fuzzbench gate (new coverage >= 10, deterministic, warm identical, fig3 shape, FP not up): PASS' /tmp/fuzzbench.out
# Hot-path gate: the streaming miner must beat the frozen pre-change
# miner (same harness, same corpus) by the acceptance floor, reach
# byte-identical engine state streaming vs replay, and agree with
# sharded/parallel mining on the invariant set and Figure 3 rows.
dune exec bench/main.exe -- minebench | tee /tmp/minebench.out
grep -q 'minebench gate (state identical, stream==replay==sharded, seq==par, >=1.5x): PASS' /tmp/minebench.out
# Mutbench gate: the compiled assertion battery must reproduce the
# interpretive oracle's firing sequence exactly on the full corpus while
# running at least 2x faster, match the Table 1 detection baseline, and
# the 200-mutant campaign must classify every mutant into the Section 5.5
# taxonomy with a seed-stable fingerprint.
dune exec bench/main.exe -- mutbench | tee /tmp/mutbench.out
grep -q 'mutbench gate (compiled==interpretive, >=2x, table1 >= baseline, >=200 mutants deterministic): PASS' /tmp/mutbench.out
# Lakebench gate: replaying the on-disk trace lake must be bit-identical
# (SCIFSNAP engine bytes) to live simulation at 1x and at the 100x
# replicated corpus, stream records off disk at least as fast as the
# simulator produces them, and reject a torn tail as corrupt. The
# parallel lane shards the replay at -j 4: its engine digest must equal
# the sequential one, a warm summary cache populated at -j 1 must hit
# from a -j 4 session with the same digest, and the speedup must clear
# the 1.8x floor wherever the host has >= 4 cores (waived below that —
# the byte-identity legs still bind).
dune exec bench/main.exe -- lakebench | tee /tmp/lakebench.out
grep -q 'lakebench gate (replay==sim at 1x and 100x, >=100x corpus, disk rps >= sim rps, par digest == seq, warm cache across jobs, par ratio >= floor, torn tail rejected): PASS' /tmp/lakebench.out
# The lake round-trips through the CLI: record one workload's segment
# with trace --record-out, then mine it back out-of-core — sharded
# across 4 domains, which must not change a single reported number.
rm -rf /tmp/scif_lake && mkdir -p /tmp/scif_lake
dune exec bin/scifinder.exe -- trace pi --limit 0 --record-out /tmp/scif_lake/pi.seg | tee /tmp/lakecli.out
grep -q 'recorded 477 records to /tmp/scif_lake/pi.seg' /tmp/lakecli.out
dune exec bin/scifinder.exe -- mine --from-lake /tmp/scif_lake -j 4 --limit 1 | tee /tmp/lakemine.out
grep -q 'lake: 477 records from 1 segments' /tmp/lakemine.out
rm -rf /tmp/scif_lake
# Servebench gate: hundreds of concurrent synthetic clients against the
# in-process mining service must sustain >= 0.8x the direct batch mining
# throughput on the same worker count, record a p99 job latency, answer
# window overflow with explicit busy, and stay byte-identical
# (SCIFSNAP engine digest) to a direct sequential session.
dune exec bench/main.exe -- servebench | tee /tmp/servebench.out
grep -q 'servebench gate (>=200 clients, rps >= 0.8x batch, p99 recorded, busy backpressure, serve==batch): PASS' /tmp/servebench.out
# Serve CLI smoke: a real daemon on a Unix socket, driven by the client
# subcommands, then SIGTERM — the graceful path must drain, exit 0, and
# flush a parseable telemetry stream (the signal-flush guarantee).
rm -f /tmp/scif_serve.sock /tmp/scif_serve.jsonl
dune exec bin/scifinder.exe -- serve --socket /tmp/scif_serve.sock \
  --metrics /tmp/scif_serve.jsonl -j 2 &
SERVE_PID=$!
i=0
while [ ! -S /tmp/scif_serve.sock ]; do
  i=$((i + 1)); [ $i -le 100 ] || { echo "serve socket never appeared"; exit 1; }
  sleep 0.1
done
dune exec bin/scifinder.exe -- client mine --socket /tmp/scif_serve.sock -w pi | tee /tmp/servecli.out
grep -q 'mined 477 records (session total 477)' /tmp/servecli.out
dune exec bin/scifinder.exe -- client mine --socket /tmp/scif_serve.sock -w helloworld | tee /tmp/servecli2.out
grep -q 'mined 329 records (session total 806)' /tmp/servecli2.out
dune exec bin/scifinder.exe -- client status --socket /tmp/scif_serve.sock | tee /tmp/servestatus.out
grep -q 'p99 job' /tmp/servestatus.out
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
test -s /tmp/scif_serve.jsonl
dune exec bench/check_json.exe -- /tmp/scif_serve.jsonl
rm -f /tmp/scif_serve.sock /tmp/scif_serve.jsonl
