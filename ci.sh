#!/bin/sh
# Tier-1 gate: build, test, and smoke-run the sharded miner.
set -eu
dune build
dune runtest
dune exec bench/main.exe -- fig3 -j 2
