(* Bench-trend regression gate over the headline perf numbers.

     trend.exe record BENCH_pipeline.json [--history FILE]
     trend.exe check [--history FILE]
     trend.exe selftest

   [record] extracts the headline numbers of one bench run (mining
   throughput, the cache/minebench/mutbench speedups, the telemetry
   overhead estimate) and appends them as one JSONL entry to the history
   file (default BENCH_trend.jsonl — deliberately NOT the
   BENCH_metrics.jsonl telemetry stream, which ci.sh truncates every
   run; the history is the one bench artifact that must survive).

   [check] compares the latest entry against the trailing median of the
   previous runs (window of 5): a higher-is-better metric more than 20%
   below the median fails the gate, as does an overhead estimate above
   the absolute 2% budget. Fewer than two entries pass trivially — a
   fresh clone has no trend to regress against.

   [selftest] runs the comparison logic on synthetic histories — a 20%
   throughput drop must be flagged, a 15% wobble must not — so ci.sh can
   prove the gate bites without manufacturing a real regression. *)

let schema = "scifinder.trend/1"
let default_history = "BENCH_trend.jsonl"
let window = 5
let tolerance = 0.20
let overhead_budget_pct = 2.0

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline ("trend: " ^ s); exit 2) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- headline metrics ---- *)

type direction = Higher | Lower | Watch

(* (name, path into BENCH_pipeline.json, better-direction). Every field
   is optional per run — cheap experiments only fill "experiments", so
   record keeps whatever subset the run produced. [Watch] metrics are
   recorded and displayed but never fail the relative gate (latency on
   shared CI hardware is too load-dependent for a 20% line) — except
   when non-finite, which means the bench produced garbage. *)
let spec =
  [ ("records_per_sec", [ "mining"; "records_per_sec" ], Higher);
    ("cache_speedup", [ "cache"; "speedup" ], Higher);
    ("minebench_speedup", [ "minebench"; "speedup" ], Higher);
    ("mutbench_speedup", [ "mutbench"; "speedup" ], Higher);
    ("lakebench_rps_ratio", [ "lakebench"; "rps_ratio" ], Higher);
    ("lake_par_ratio", [ "lakebench"; "par_ratio" ], Higher);
    ("servebench_ratio", [ "servebench"; "rps_ratio" ], Higher);
    ("serve_p99_ms", [ "servebench"; "p99_job_ms" ], Watch);
    ("overhead_pct", [ "overhead"; "est_null_overhead_pct" ], Lower) ]

let lookup path doc =
  let v =
    List.fold_left
      (fun acc key -> Option.bind acc (Obs.Json.member key))
      (Some doc) path
  in
  match v with
  | Some (Obs.Json.Num f) when Float.is_finite f -> Some f
  | _ -> None

(* ---- history entries ---- *)

type entry = (string * float) list

let parse_entry line : entry option =
  match Obs.Json.parse line with
  | Error _ -> None
  | Ok doc ->
    (match Obs.Json.member "schema" doc with
     | Some (Obs.Json.Str s) when String.equal s schema ->
       (match Obs.Json.member "metrics" doc with
        | Some (Obs.Json.Obj fields) ->
          Some
            (List.filter_map
               (fun (k, v) ->
                  match v with
                  | Obs.Json.Num f when Float.is_finite f -> Some (k, f)
                  | _ -> None)
               fields)
        | _ -> None)
     | _ -> None)

let load_history path : entry list =
  if not (Sys.file_exists path) then []
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.filter_map parse_entry

(* ---- the gate ---- *)

(* NaN anywhere in the comparison fails the gate open: every [v < x]
   test is false, so a poisoned history would pass forever. Non-finite
   values are rejected before they can reach the median (parse_entry
   already drops them from on-disk histories; this also covers entries
   built in memory), and a non-finite latest value is itself a
   regression — it means the bench produced garbage. *)
let median = function
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

type verdict = Ok_v | Regression of string | No_data

let judge ~name ~dir ~latest ~priors =
  let priors = List.filter Float.is_finite priors in
  match (latest, priors) with
  | Some v, _ when not (Float.is_finite v) ->
    Regression (Printf.sprintf "%s is not finite (%h)" name v)
  | None, _ | _, [] -> No_data
  | Some v, priors ->
    let m = median priors in
    let delta = if m <> 0.0 then 100.0 *. (v -. m) /. m else 0.0 in
    (match dir with
     | Higher ->
       if v < (1.0 -. tolerance) *. m then
         Regression
           (Printf.sprintf "%s %.2f is %.1f%% below the trailing median %.2f"
              name v (-.delta) m)
       else Ok_v
     | Lower ->
       (* Relative checks on a sub-percent estimate are pure noise; the
          hard line is the same absolute budget obsbench enforces. *)
       if v > overhead_budget_pct then
         Regression
           (Printf.sprintf "%s %.2f%% exceeds the %.1f%% budget" name v
              overhead_budget_pct)
       else Ok_v
     | Watch ->
       (* Tracked for the record only; the finiteness check above is the
          one way a Watch metric can fail. *)
       ignore delta;
       Ok_v)

(* Latest entry vs the trailing median of (up to [window]) prior runs.
   Returns the failing messages; [] passes. *)
let gate (history : entry list) : string list =
  match List.rev history with
  | [] | [ _ ] -> []
  | latest :: prior_rev ->
    let priors =
      List.filteri (fun i _ -> i < window) prior_rev |> List.rev
    in
    List.filter_map
      (fun (name, _, dir) ->
         let values l = List.assoc_opt name l in
         let pv = List.filter_map values priors in
         match
           judge ~name ~dir ~latest:(values latest) ~priors:pv
         with
         | Regression msg -> Some msg
         | Ok_v | No_data -> None)
      spec

let print_gate ~label history =
  let failures = gate history in
  let n = List.length history in
  (match List.rev history with
   | latest :: prior_rev when n >= 2 ->
     let priors = List.filteri (fun i _ -> i < window) prior_rev in
     List.iter
       (fun (name, _, _) ->
          let pv = List.filter_map (List.assoc_opt name) priors in
          match (List.assoc_opt name latest, pv) with
          | Some v, (_ :: _ as pv) ->
            let m = median pv in
            Printf.printf "  %-18s latest %10.2f  median %10.2f  %+6.1f%%\n"
              name v m
              (if m <> 0.0 then 100.0 *. (v -. m) /. m else 0.0)
          | Some v, [] ->
            Printf.printf "  %-18s latest %10.2f  (no prior runs)\n" name v
          | None, _ -> ())
       spec
   | _ -> ());
  List.iter (fun msg -> Printf.printf "  REGRESSION: %s\n" msg) failures;
  if failures = [] then begin
    Printf.printf
      "%s (>%.0f%% below trailing median fails): PASS (%d entr%s)\n" label
      (100.0 *. tolerance) n
      (if n = 1 then "y" else "ies");
    0
  end
  else begin
    Printf.printf "%s (>%.0f%% below trailing median fails): FAIL\n" label
      (100.0 *. tolerance);
    1
  end

(* ---- record ---- *)

let record bench_json history =
  let doc =
    match Obs.Json.parse (read_file bench_json) with
    | Ok d -> d
    | Error e -> die "%s: %s" bench_json e
  in
  let metrics =
    List.filter_map
      (fun (name, path, _) ->
         Option.map (fun v -> (name, v)) (lookup path doc))
      spec
  in
  if metrics = [] then die "%s: no headline numbers found" bench_json;
  let seq = List.length (load_history history) + 1 in
  let b = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string b) "{\"schema\":\"%s\",\"seq\":%d,\"metrics\":{"
    schema seq;
  List.iteri
    (fun i (k, v) ->
       Printf.ksprintf (Buffer.add_string b) "%s\"%s\":%.6f"
         (if i = 0 then "" else ",") k v)
    metrics;
  Buffer.add_string b "}}\n";
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 history
  in
  Fun.protect ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b);
  Printf.printf "trend: recorded entry %d (%s) to %s\n" seq
    (String.concat ", " (List.map fst metrics))
    history;
  0

(* ---- selftest ---- *)

let selftest () =
  let entry rps over = [ ("records_per_sec", rps); ("overhead_pct", over) ] in
  let base = [ entry 1000.0 0.4; entry 1040.0 0.5; entry 980.0 0.4 ] in
  let expect what cond = if not cond then die "selftest: %s" what in
  (* A clean 20%+ throughput drop must be flagged... *)
  expect "20%% rps drop not flagged" (gate (base @ [ entry 790.0 0.4 ]) <> []);
  (* ...ordinary wobble must not... *)
  expect "15%% wobble flagged" (gate (base @ [ entry 860.0 0.4 ]) = []);
  (* ...an improvement must not... *)
  expect "improvement flagged" (gate (base @ [ entry 1500.0 0.4 ]) = []);
  (* ...overhead past the absolute budget must be... *)
  expect "overhead blowout not flagged"
    (gate (base @ [ entry 1000.0 2.5 ]) <> []);
  (* ...and thin histories pass trivially. *)
  expect "single entry failed" (gate [ entry 1000.0 0.4 ] = []);
  expect "empty history failed" (gate [] = []);
  (* A metric present only in the latest entry has no trend to regress. *)
  expect "fresh metric flagged"
    (gate [ entry 1000.0 0.4; entry 990.0 0.4 @ [ ("cache_speedup", 9.0) ] ]
     = []);
  (* NaN must fail the gate closed, not open: a NaN latest is itself a
     regression (the bench produced garbage)... *)
  expect "NaN latest passed silently" (gate (base @ [ entry nan 0.4 ]) <> []);
  (* ...and a NaN in the history must not poison the median and mask a
     real 20% drop (with two priors the old polymorphic-compare median
     averaged NaN in and every comparison went false). *)
  expect "NaN history masked a 20%% drop"
    (gate [ entry 1000.0 0.4; entry nan 0.4; entry 790.0 0.4 ] <> []);
  expect "NaN history flagged a healthy run"
    (gate (base @ [ entry nan 0.4 ] @ [ entry 1000.0 0.4 ]) = []);
  (* Watch metrics never trip the relative gate, however much they move
     in either direction... *)
  let wentry rps p99 =
    [ ("records_per_sec", rps); ("serve_p99_ms", p99) ]
  in
  let wbase = [ wentry 1000.0 50.0; wentry 1040.0 55.0; wentry 980.0 45.0 ] in
  expect "watch metric 10x blowup tripped the gate"
    (gate (wbase @ [ wentry 1000.0 500.0 ]) = []);
  expect "watch metric collapse tripped the gate"
    (gate (wbase @ [ wentry 1000.0 1.0 ]) = []);
  (* ...but a non-finite Watch value is still garbage and must fail. *)
  expect "NaN watch metric passed silently"
    (gate (wbase @ [ wentry 1000.0 nan ]) <> []);
  (* And the serve throughput ratio is an ordinary Higher metric. *)
  let sentry rps ratio =
    [ ("records_per_sec", rps); ("servebench_ratio", ratio) ]
  in
  let sbase = [ sentry 1000.0 1.0; sentry 1000.0 1.05; sentry 1000.0 0.95 ] in
  expect "servebench ratio drop not flagged"
    (gate (sbase @ [ sentry 1000.0 0.7 ]) <> []);
  expect "servebench ratio wobble flagged"
    (gate (sbase @ [ sentry 1000.0 0.9 ]) = []);
  (* So is the parallel lake-replay speedup. *)
  let pentry rps ratio =
    [ ("records_per_sec", rps); ("lake_par_ratio", ratio) ]
  in
  let pbase = [ pentry 1000.0 2.4; pentry 1000.0 2.5; pentry 1000.0 2.3 ] in
  expect "lake par ratio drop not flagged"
    (gate (pbase @ [ pentry 1000.0 1.6 ]) <> []);
  expect "lake par ratio wobble flagged"
    (gate (pbase @ [ pentry 1000.0 2.2 ]) = []);
  Printf.printf "trend gate (synthetic 20%% regression flagged): PASS\n";
  0

(* ---- CLI ---- *)

let () =
  let args = Array.to_list Sys.argv in
  let rec split_history acc = function
    | "--history" :: file :: rest -> (Some file, List.rev_append acc rest)
    | x :: rest -> split_history (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let history_opt, args = split_history [] (List.tl args) in
  let history = Option.value history_opt ~default:default_history in
  let code =
    match args with
    | [ "record"; bench_json ] -> record bench_json history
    | [ "check" ] ->
      print_gate ~label:"trend gate" (load_history history)
    | [ "selftest" ] -> selftest ()
    | _ ->
      prerr_endline
        "usage: trend [--history FILE] record BENCH_pipeline.json\n\
        \       trend [--history FILE] check\n\
        \       trend selftest";
      2
  in
  exit code
