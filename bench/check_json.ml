(* CI helper: verify that telemetry artifacts are well-formed JSON.

     check_json.exe FILE...

   Files ending in ".jsonl" are parsed line by line (blank lines are
   allowed); anything else must be a single JSON document.  Exits 1 on
   the first malformed file, printing where parsing failed. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail path msg =
  Printf.eprintf "check_json: %s: %s\n" path msg;
  exit 1

let check_jsonl path =
  let lines = String.split_on_char '\n' (read_file path) in
  let n = ref 0 in
  List.iteri
    (fun i line ->
       if String.trim line <> "" then begin
         incr n;
         match Obs.Json.parse line with
         | Ok _ -> ()
         | Error e -> fail path (Printf.sprintf "line %d: %s" (i + 1) e)
       end)
    lines;
  if !n = 0 then fail path "no JSON lines";
  Printf.printf "check_json: %s: %d JSON lines OK\n" path !n

let check_json path =
  match Obs.Json.parse (read_file path) with
  | Ok _ -> Printf.printf "check_json: %s: OK\n" path
  | Error e -> fail path e

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: check_json FILE..."; exit 2
  end;
  List.iter
    (fun path ->
       if not (Sys.file_exists path) then fail path "missing";
       if Filename.check_suffix path ".jsonl" then check_jsonl path
       else check_json path)
    files
