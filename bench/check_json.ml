(* CI helper: verify that telemetry artifacts are well-formed JSON.

     check_json.exe FILE...

   Files ending in ".jsonl" are parsed line by line (blank lines are
   allowed); files ending in ".trace.json" are validated as Chrome
   trace-event documents (see check_trace below); anything else must be
   a single JSON document.  Exits 1 on the first malformed file,
   printing where parsing failed. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail path msg =
  Printf.eprintf "check_json: %s: %s\n" path msg;
  exit 1

let check_jsonl path =
  let lines = String.split_on_char '\n' (read_file path) in
  let n = ref 0 in
  List.iteri
    (fun i line ->
       if String.trim line <> "" then begin
         incr n;
         match Obs.Json.parse line with
         | Ok _ -> ()
         | Error e -> fail path (Printf.sprintf "line %d: %s" (i + 1) e)
       end)
    lines;
  if !n = 0 then fail path "no JSON lines";
  Printf.printf "check_json: %s: %d JSON lines OK\n" path !n

let check_json path =
  match Obs.Json.parse (read_file path) with
  | Ok _ -> Printf.printf "check_json: %s: OK\n" path
  | Error e -> fail path e

(* Chrome trace-event structural validation, on top of strict parsing:
   a traceEvents array whose every event carries name/ph/pid/tid, a
   non-negative timestamp, a non-negative duration on complete ("X")
   spans, and one consistent pid across the file — the invariants
   Perfetto/chrome://tracing rely on to build the track view. *)
let check_trace path =
  let doc =
    match Obs.Json.parse (read_file path) with
    | Ok d -> d
    | Error e -> fail path e
  in
  let events =
    match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.Arr evs) -> evs
    | _ -> fail path "no traceEvents array"
  in
  if events = [] then fail path "empty traceEvents";
  let num name ev =
    match Obs.Json.member name ev with
    | Some (Obs.Json.Num f) -> Some f
    | _ -> None
  in
  let pid0 = ref None in
  List.iteri
    (fun i ev ->
       let bad msg = fail path (Printf.sprintf "event %d: %s" i msg) in
       (match Obs.Json.member "name" ev with
        | Some (Obs.Json.Str _) -> ()
        | _ -> bad "missing name");
       let ph =
         match Obs.Json.member "ph" ev with
         | Some (Obs.Json.Str s) -> s
         | _ -> bad "missing ph"
       in
       (match num "tid" ev with Some _ -> () | None -> bad "missing tid");
       (match num "pid" ev with
        | None -> bad "missing pid"
        | Some p ->
          (match !pid0 with
           | None -> pid0 := Some p
           | Some q -> if p <> q then bad "inconsistent pid"));
       (match num "ts" ev with
        | None -> bad "missing ts"
        | Some ts -> if ts < 0.0 then bad "negative ts");
       if String.equal ph "X" then
         match num "dur" ev with
         | None -> bad "complete span without dur"
         | Some d -> if d < 0.0 then bad "negative dur")
    events;
  Printf.printf "check_json: %s: %d trace events OK\n" path
    (List.length events)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: check_json FILE..."; exit 2
  end;
  List.iter
    (fun path ->
       if not (Sys.file_exists path) then fail path "missing";
       if Filename.check_suffix path ".trace.json" then check_trace path
       else if Filename.check_suffix path ".jsonl" then check_jsonl path
       else check_json path)
    files
