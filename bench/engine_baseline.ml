(* Frozen copy of the Daikon engine's observe path as it stood before
   the hot-path work: a [Hashtbl.find_opt] per record, one boxed tracker
   record per variable pair, a closure-allocating scale filter, and no
   settled-pair fast path. Used only by the minebench experiment as the
   speedup denominator; [candidate_stats] lets the harness check that the
   frozen code and the current engine falsify exactly the same candidate
   sets over the mining corpus.

   Policies and scale factors come from [Daikon.Engine] so the two
   implementations can never drift apart on semantics — minebench is
   about constant factors, not behaviour. *)

module Var = Trace.Var

(* Template-policy bits, mirroring the engine's (stable) encoding. *)
let p_order = 1
let p_eq = 2
let p_ne = 4
let p_diff = 8
let p_scale = 16

let pair_policy = Daikon.Engine.pair_policy
let scale_candidates = Daikon.Engine.scale_candidates
let full_scale_mask = (1 lsl Array.length scale_candidates) - 1

type vstat = {
  mutable vmin : int;
  mutable vmax : int;
  mutable values : int array;
  mutable ndistinct : int;
  mutable mod4 : int;
  mutable mod2 : int;
}

type ptracker = {
  pi : int;
  pj : int;
  policy : int;
  mutable rel : int;
  mutable diff : int;
  mutable diff_live : bool;
  mutable scale_ij : int;
  mutable scale_ji : int;
  mutable scale_nonzero : int;
}

type point_state = {
  pname : string;
  vars : int array;
  stats : vstat option array;
  pairs : ptracker array;
  mutable n : int;
}

type t = {
  config : Daikon.Config.t;
  points : (string, point_state) Hashtbl.t;
  mutable nrecords : int;
}

let create ?(config = Daikon.Config.default) () =
  { config; points = Hashtbl.create 97; nrecords = 0 }

let record_count t = t.nrecords
let point_count t = Hashtbl.length t.points

let new_point config name (mask : bool array) values =
  let cap = max 1 config.Daikon.Config.max_oneof in
  let vars =
    Var.all_ids
    |> List.filter (fun id -> mask.(id))
    |> Array.of_list
  in
  let stats = Array.make Var.total None in
  Array.iter
    (fun id ->
       let v = values.(id) in
       let dv = Array.make cap 0 in
       dv.(0) <- v;
       stats.(id) <- Some {
         vmin = v; vmax = v;
         values = dv; ndistinct = 1;
         mod4 = (if Var.id_kind id = Var.Addr then v land 3 else -1);
         mod2 = (if Var.id_kind id = Var.Addr then v land 1 else -1);
       })
    vars;
  let pairs = ref [] in
  let nv = Array.length vars in
  for a = 0 to nv - 1 do
    for b = a + 1 to nv - 1 do
      let i = vars.(a) and j = vars.(b) in
      let policy = pair_policy (Var.id_kind i) (Var.id_kind j) in
      if policy <> 0 then
        pairs := { pi = i; pj = j; policy;
                   rel = 0; diff = 0; diff_live = false;
                   scale_ij = full_scale_mask; scale_ji = full_scale_mask;
                   scale_nonzero = 0 }
                 :: !pairs
    done
  done;
  { pname = name; vars; stats; pairs = Array.of_list !pairs; n = 0 }

let update_vstat st v =
  if v < st.vmin then st.vmin <- v;
  if v > st.vmax then st.vmax <- v;
  if st.ndistinct >= 0 then begin
    let n = st.ndistinct in
    let pos = ref 0 in
    while !pos < n && st.values.(!pos) < v do incr pos done;
    if !pos >= n || st.values.(!pos) <> v then begin
      if n >= Array.length st.values then begin
        st.values <- [||];
        st.ndistinct <- -1
      end else begin
        for k = n downto !pos + 1 do st.values.(k) <- st.values.(k - 1) done;
        st.values.(!pos) <- v;
        st.ndistinct <- n + 1
      end
    end
  end;
  if st.mod4 >= 0 && v land 3 <> st.mod4 then st.mod4 <- -1;
  if st.mod2 >= 0 && v land 1 <> st.mod2 then st.mod2 <- -1

let update_pair first p vi vj =
  if vi < vj then p.rel <- p.rel lor 1
  else if vi = vj then p.rel <- p.rel lor 2
  else p.rel <- p.rel lor 4;
  if p.policy land p_diff <> 0 then begin
    let d = Util.U32.signed (Util.U32.sub vj vi) in
    if first then begin p.diff <- d; p.diff_live <- true end
    else if p.diff_live && p.diff <> d then p.diff_live <- false
  end;
  if p.policy land p_scale <> 0
  && (p.scale_ij <> 0 || p.scale_ji <> 0) then begin
    if vi <> 0 || vj <> 0 then p.scale_nonzero <- p.scale_nonzero + 1;
    if p.scale_ij <> 0 then begin
      let m = ref p.scale_ij in
      Array.iteri
        (fun bit k ->
           if !m land (1 lsl bit) <> 0 && Util.U32.mul vi k <> vj then
             m := !m land lnot (1 lsl bit))
        scale_candidates;
      p.scale_ij <- !m
    end;
    if p.scale_ji <> 0 then begin
      let m = ref p.scale_ji in
      Array.iteri
        (fun bit k ->
           if !m land (1 lsl bit) <> 0 && Util.U32.mul vj k <> vi then
             m := !m land lnot (1 lsl bit))
        scale_candidates;
      p.scale_ji <- !m
    end
  end

let observe t (record : Trace.Record.t) =
  t.nrecords <- t.nrecords + 1;
  let values = record.values in
  let st =
    match Hashtbl.find_opt t.points record.point with
    | Some st -> st
    | None ->
      let st = new_point t.config record.point record.mask values in
      Hashtbl.add t.points record.point st;
      st
  in
  let first = st.n = 0 in
  st.n <- st.n + 1;
  if first then
    ()
  else
    Array.iter
      (fun id ->
         match st.stats.(id) with
         | Some vs -> update_vstat vs values.(id)
         | None -> ())
      st.vars;
  let pairs = st.pairs in
  for k = 0 to Array.length pairs - 1 do
    let p = pairs.(k) in
    update_pair first p values.(p.pi) values.(p.pj)
  done

(* Candidate accounting in the same shape as [Daikon.Engine.family_stats],
   so minebench can assert the two implementations reached identical
   candidate state over the corpus. *)
let candidate_stats t : Daikon.Engine.family_stats list =
  let oneof_born = ref 0 and oneof_live = ref 0 in
  let interval_born = ref 0 in
  let mod_born = ref 0 and mod_live = ref 0 in
  let rel_born = ref 0 and rel_live = ref 0 in
  let diff_born = ref 0 and diff_live = ref 0 in
  let scale_born = ref 0 and scale_live = ref 0 in
  Hashtbl.iter
    (fun _ st ->
       Array.iter
         (fun id ->
            match st.stats.(id) with
            | None -> ()
            | Some vs ->
              Stdlib.incr oneof_born;
              if vs.ndistinct >= 0 then Stdlib.incr oneof_live;
              Stdlib.incr interval_born;
              if Var.id_kind id = Var.Addr then begin
                mod_born := !mod_born + 2;
                if vs.mod4 >= 0 then Stdlib.incr mod_live;
                if vs.mod2 >= 0 then Stdlib.incr mod_live
              end)
         st.vars;
       Array.iter
         (fun p ->
            if p.policy land (p_order lor p_eq lor p_ne) <> 0 then begin
              Stdlib.incr rel_born;
              if p.rel <> 7 then Stdlib.incr rel_live
            end;
            if p.policy land p_diff <> 0 then begin
              Stdlib.incr diff_born;
              if p.diff_live then Stdlib.incr diff_live
            end;
            if p.policy land p_scale <> 0 then begin
              Stdlib.incr scale_born;
              if p.scale_ij <> 0 || p.scale_ji <> 0 then
                Stdlib.incr scale_live
            end)
         st.pairs)
    t.points;
  [ { Daikon.Engine.family = "oneof"; born = !oneof_born; live = !oneof_live };
    { family = "interval"; born = !interval_born; live = !interval_born };
    { family = "mod"; born = !mod_born; live = !mod_live };
    { family = "relation"; born = !rel_born; live = !rel_live };
    { family = "diff"; born = !diff_born; live = !diff_live };
    { family = "scale"; born = !scale_born; live = !scale_live } ]
