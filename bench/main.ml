(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5) and runs one Bechamel micro-benchmark per
   table/figure kernel.

     main.exe            run every experiment, print paper-layout tables
     main.exe <id>       one experiment: fig3 tab2 tab3 tab4 fig4 tab5
                         tab6 tab7 tab8 tab9 sec56 ablation parbench
                         obsbench cachebench fuzzbench minebench mutbench
                         lakebench
     main.exe bechamel   the Bechamel micro-benchmarks
     main.exe -j N ...   mine the trace corpus on a pool of N domains
                         (default: the recommended domain count)
     main.exe --metrics[=FILE] ...
                         stream telemetry as JSON lines to FILE
                         (default BENCH_metrics.jsonl)

   Every run also writes BENCH_pipeline.json: per-experiment wall time
   plus mining throughput and the peak invariant count when the corpus
   was mined — the machine-readable perf trajectory.

   Absolute numbers differ from the paper (the substrate is an ISA-level
   simulator and a synthetic trace corpus, see DESIGN.md); the shapes are
   the reproduction target and are recorded in EXPERIMENTS.md. *)

module Pipeline = Scifinder_core.Pipeline
module Experiments = Scifinder_core.Experiments
module Shape = Scifinder_core.Shape
module Expr = Invariant.Expr

let pf = Printf.printf

let header title =
  pf "\n===== %s =====\n" title

(* ---- the shared pipeline run (computed lazily, used by many tables) ---- *)

let jobs = ref (Util.Parallel.default_jobs ())

(* Per-experiment wall times (monotonic), harvested into
   BENCH_pipeline.json when the process exits. *)
let experiment_seconds : (string * float) list ref = ref []

(* Filled by obsbench; lands in BENCH_pipeline.json's "overhead" block. *)
let overhead_result : (string * float) list ref = ref []

let mining = lazy (Pipeline.mine ~jobs:!jobs ())

let optimization =
  lazy (Pipeline.optimize (Lazy.force mining).Pipeline.invariants)

let optimized_invariants =
  lazy (Lazy.force optimization).Pipeline.result.Invopt.Pipeline.optimized

let identification =
  lazy (Pipeline.identify ~invariants:(Lazy.force optimized_invariants)
          Bugs.Table1.all)

let inference =
  lazy
    (Pipeline.infer ~all_invariants:(Lazy.force optimized_invariants)
       (Lazy.force identification).Pipeline.summary)

(* ---- Figure 3 ---- *)

let fig3 () =
  header "Figure 3: unique invariants per cumulatively added program";
  let m = Lazy.force mining in
  pf "%-11s %10s %10s %10s %10s\n" "program" "total" "unmodified" "new" "deleted";
  List.iter
    (fun (r : Pipeline.figure3_row) ->
       pf "%-11s %10d %10d %10d %10d\n"
         r.group_label r.total r.unmodified r.fresh r.deleted)
    m.Pipeline.figure3;
  (* The paper's qualitative claim: the set stabilises as programs are
     added (late programs add/remove far less than early ones). *)
  (match m.Pipeline.figure3 with
   | first :: rest when rest <> [] ->
     let last = List.nth rest (List.length rest - 1) in
     pf "churn first program: %d, last program: %d (paper: converging)\n"
       (first.fresh + first.deleted) (last.fresh + last.deleted)
   | _ -> ());
  pf "trace corpus: %d records (~%.1f MB of trace data; paper used 26 GB)\n"
    m.Pipeline.record_count
    (float_of_int m.Pipeline.trace_bytes /. 1048576.0)

(* ---- Table 2 ---- *)

let tab2 () =
  header "Table 2: effect of invariant optimizations";
  let o = Lazy.force optimization in
  let stages = o.Pipeline.result.Invopt.Pipeline.stages in
  pf "%-12s %12s %12s\n" "" "Invariants" "Variables";
  List.iter
    (fun (s : Invopt.Pipeline.stage_stats) ->
       pf "%-12s %12d %12d\n" s.stage s.invariants s.variables)
    stages;
  (match stages with
   | [ raw; _; _; er ] ->
     pf "reduction: %.1f%% invariants, %.1f%% variables (paper: 17%% / 20%%)\n"
       (100.0 *. (1.0 -. (float_of_int er.invariants /. float_of_int raw.invariants)))
       (100.0 *. (1.0 -. (float_of_int er.variables /. float_of_int raw.variables)))
   | _ -> ())

(* ---- Table 3 ---- *)

let tab3 () =
  header "Table 3: SCI identified per security-critical bug";
  let ident = Lazy.force identification in
  pf "%-5s %9s %6s %9s\n" "Bug" "True SCI" "FP" "Detected";
  List.iter
    (fun (r : Sci.Identify.report) ->
       pf "%-5s %9d %6d %9s\n"
         r.bug.Bugs.Registry.id
         (List.length r.true_sci)
         (List.length r.false_positives)
         (if r.detected then "yes" else "NO"))
    ident.Pipeline.summary.Sci.Identify.reports;
  let detected =
    List.length
      (List.filter (fun (r : Sci.Identify.report) -> r.detected)
         ident.Pipeline.summary.Sci.Identify.reports)
  in
  pf "detected %d/17 (paper: 16/17, b2 needs microarchitectural state)\n" detected;
  pf "unique SCI %d, unique FP %d (paper labels: 54 SCI / 48 non-SCI)\n"
    (List.length ident.Pipeline.summary.Sci.Identify.unique_sci)
    (List.length ident.Pipeline.summary.Sci.Identify.unique_fp)

(* ---- Table 4 ---- *)

let tab4 () =
  header "Table 4: elastic-net features with non-zero coefficients";
  let inf = Lazy.force inference in
  pf "lambda = %.4f (3-fold CV, alpha = 0.5; paper: lambda = 0.08)\n"
    inf.Pipeline.chosen_lambda;
  pf "test accuracy = %.0f%% (paper: 90%%)\n" (100.0 *. inf.Pipeline.test_accuracy);
  pf "%d of %d features selected (paper: 24 of 158)\n"
    (List.length inf.Pipeline.selected_features)
    (Invariant.Feature.dimension inf.Pipeline.space);
  let neg, pos =
    List.partition (fun (_, b) -> b < 0.0) inf.Pipeline.selected_features
  in
  let names fs = String.concat " " (List.map fst fs) in
  pf "negative weights (SCI-associated):\n  %s\n" (names neg);
  pf "positive weights (non-SCI-associated):\n  %s\n" (names pos)

(* ---- Figure 4 ---- *)

let fig4 () =
  header "Figure 4: PCA of labeled invariants on the selected features";
  let inf = Lazy.force inference in
  pf "%d labeled invariants projected on PC1/PC2\n"
    (List.length inf.Pipeline.pca_points);
  (* Print per-class centroids and the separation ratio: the textual
     equivalent of the scatter plot. *)
  let centroid cls =
    let pts = List.filter (fun (_, c) -> c = cls) inf.Pipeline.pca_points in
    let n = float_of_int (max 1 (List.length pts)) in
    let sx = List.fold_left (fun a (p, _) -> a +. p.(0)) 0.0 pts /. n in
    let sy = List.fold_left (fun a (p, _) -> a +. p.(1)) 0.0 pts /. n in
    (sx, sy, List.length pts)
  in
  let (x1, y1, n1) = centroid 1 and (x0, y0, n0) = centroid 0 in
  pf "SC centroid      (%+.2f, %+.2f) over %d invariants\n" x1 y1 n1;
  pf "non-SC centroid  (%+.2f, %+.2f) over %d invariants\n" x0 y0 n0;
  pf "between/within separation ratio: %.2f\n" inf.Pipeline.pca_separation;
  pf "(the class centroids sit at opposite signs of PC2: the clusters are\n";
  pf " visible though, with 10x more labels than the paper's 102, less\n";
  pf " crisply separated than its Figure 4; see fig4.csv via 'export')\n"

(* ---- Table 5 ---- *)

let tab5 () =
  header "Table 5: SCI inference results";
  let inf = Lazy.force inference in
  let unlabeled =
    List.length (Lazy.force optimized_invariants)
    - inf.Pipeline.labeled_sci - inf.Pipeline.labeled_non_sci
  in
  pf "%-12s %10s %6s %20s\n" "Invariants" "Inferred" "FP" "Security properties";
  pf "%-12d %10d %6d %20d\n"
    unlabeled
    (List.length inf.Pipeline.recommended)
    (List.length inf.Pipeline.inferred_fp)
    inf.Pipeline.property_count;
  pf "(paper: 88,199 -> 3,146 inferred, 852 FP, 33 properties)\n"

(* ---- Tables 6 and 7 ---- *)

let coverage =
  lazy
    (Experiments.property_coverage
       (Lazy.force identification).Pipeline.summary
       (Lazy.force inference))

let tab6 () =
  header "Table 6: coverage of the SPECS / Security-Checker properties";
  let cov = Lazy.force coverage in
  pf "%-5s %-5s %-6s %-14s %s\n" "Prop" "Class" "Ident" "Infer/bugs" "Description";
  let in_scope_found = ref 0 and in_scope_total = ref 0 in
  List.iter
    (fun (c : Properties.Catalog.coverage) ->
       let p = c.property in
       if p.Properties.Catalog.origin <> Properties.Catalog.New_property then begin
         let status =
           match p.Properties.Catalog.expectation with
           | Properties.Catalog.Needs_microarch -> "*"
           | Properties.Catalog.Outside_core -> "#"
           | Properties.Catalog.Reachable | Properties.Catalog.Not_generated ->
             if c.from_identification then String.concat " " c.found_by_bugs
             else if c.from_inference then "infer"
             else "N"
         in
         if Properties.Catalog.in_scope p then begin
           incr in_scope_total;
           if c.from_identification || c.from_inference then incr in_scope_found
         end;
         pf "%-5s %-5s %-6s %-14s %s\n"
           p.Properties.Catalog.id
           (Bugs.Registry.category_name p.Properties.Catalog.category)
           (if c.from_identification then "yes" else "-")
           status
           p.Properties.Catalog.description
       end)
    cov;
  pf "found %d of %d in-scope prior-work properties (paper: 19 of 22, 86.4%%)\n"
    !in_scope_found !in_scope_total

let tab7 () =
  header "Table 7: new security properties not covered by prior work";
  let cov = Lazy.force coverage in
  List.iter
    (fun (c : Properties.Catalog.coverage) ->
       let p = c.property in
       if p.Properties.Catalog.origin = Properties.Catalog.New_property then
         pf "%-5s %-5s ident=[%s] infer=%b  %s\n"
           p.Properties.Catalog.id
           (Bugs.Registry.category_name p.Properties.Catalog.category)
           (String.concat " " c.found_by_bugs)
           c.from_inference
           p.Properties.Catalog.description)
    cov;
  pf "(paper: p28 from b6/b7, p29 from b3/b10, p30 from inference)\n"

(* ---- Section 5.6 ---- *)

let sec56 () =
  header "Section 5.6: detecting unknown bugs (14 held-out AMD-class errata)";
  let ident = Lazy.force identification in
  let inf = Lazy.force inference in
  let reports =
    Experiments.holdout
      ~identified_sci:ident.Pipeline.summary.Sci.Identify.unique_sci
      ~inferred_sci:inf.Pipeline.surviving
      Bugs.Amd_errata.all
  in
  pf "%-5s %-10s %-10s %-9s %s\n" "Bug" "Identified" "Inferred" "Detected" "Synopsis";
  List.iter
    (fun (r : Experiments.holdout_report) ->
       pf "%-5s %-10s %-10s %-9s %s\n"
         r.bug.Bugs.Registry.id
         (if r.by_identified then "fires" else "-")
         (if r.by_inferred then "fires" else "-")
         (if r.detected then "yes" else "NO")
         r.bug.Bugs.Registry.synopsis)
    reports;
  let detected = List.length (List.filter (fun r -> r.Experiments.detected) reports) in
  pf "detected %d/14 (paper: 12/14; two are timing-only microarchitectural)\n" detected;
  header "Section 5.6 (repeat): random 14/14 split over the 28-bug pool";
  let split =
    Experiments.random_split ~invariants:(Lazy.force optimized_invariants) ()
  in
  pf "training: %s\n" (String.concat " " split.Experiments.training_ids);
  pf "test:     %s\n" (String.concat " " split.Experiments.test_ids);
  List.iter
    (fun (r : Experiments.holdout_report) ->
       pf "  %-5s detected=%s\n" r.bug.Bugs.Registry.id
         (if r.detected then "yes" else "NO"))
    split.Experiments.reports;
  pf "detected %d/%d (paper: 13/14 with only b6 missed)\n"
    split.Experiments.detected_count
    (List.length split.Experiments.reports)

(* ---- Table 8 ---- *)

let tab8 () =
  header "Table 8: execution time of each step";
  let m = Lazy.force mining in
  let o = Lazy.force optimization in
  let ident = Lazy.force identification in
  let inf = Lazy.force inference in
  pf "%-22s %-22s %12s\n" "Step" "Data size" "Time";
  pf "%-22s %-22s %11.1fs\n" "Invariant Generation"
    (Printf.sprintf "%d records (%.1f MB)" m.Pipeline.record_count
       (float_of_int m.Pipeline.trace_bytes /. 1048576.0))
    m.Pipeline.seconds;
  pf "%-22s %-22s %11.1fs\n" "Optimization"
    (Printf.sprintf "%d invariants" (List.length m.Pipeline.invariants))
    o.Pipeline.opt_seconds;
  pf "%-22s %-22s %11.1fs\n" "SCI Identification"
    (Printf.sprintf "%d invariants + %d bugs"
       (List.length (Lazy.force optimized_invariants))
       (List.length Bugs.Table1.all))
    ident.Pipeline.ident_seconds;
  pf "%-22s %-22s %11.1fs\n" "SCI Inference"
    (Printf.sprintf "%d invariants" (List.length (Lazy.force optimized_invariants)))
    inf.Pipeline.infer_seconds;
  pf "(paper: 11:21:00 generation over 26 GB, 4 s optimization,\n";
  pf " 44:52 identification, <1 s inference; same ordering of magnitudes)\n"

(* ---- Table 9 ---- *)

let tab9 () =
  header "Table 9: hardware overhead of the synthesized assertions";
  let ident = Lazy.force identification in
  let inf = Lazy.force inference in
  let r =
    Experiments.hardware_overhead
      ~identified_sci:ident.Pipeline.summary.Sci.Identify.unique_sci
      ~inferred_sci:inf.Pipeline.surviving
  in
  pf "baseline: OR1200 SoC, %d LUTs, %.2f W, %.1f ns (xupv5-lx110t)\n"
    Assertions.Cost.baseline_luts Assertions.Cost.baseline_power_w
    Assertions.Cost.baseline_delay_ns;
  pf "%-22s %14s %14s %8s\n" "" "Initial SCI" "Final SCI" "";
  pf "%-22s %14d %14d\n" "Assertions" r.Experiments.initial_assertions
    r.Experiments.final_assertions;
  pf "%-22s %13.2f%% %13.2f%%  (paper: 1.6%% / 4.4%%)\n" "Logic (LUT overhead)"
    r.Experiments.initial.Assertions.Cost.lut_pct
    r.Experiments.final.Assertions.Cost.lut_pct;
  pf "%-22s %13.2f%% %13.2f%%  (paper: 0.13%% / 0.31%%)\n" "Power"
    r.Experiments.initial.Assertions.Cost.power_pct
    r.Experiments.final.Assertions.Cost.power_pct;
  pf "%-22s %13.1fns %13.1fns (paper: 0%%)\n" "Added delay"
    r.Experiments.initial.Assertions.Cost.delay_ns_added
    r.Experiments.final.Assertions.Cost.delay_ns_added

(* ---- ablation: the jump effective-address derived variable ----

   The paper reports property p10 as not generated and notes that adding
   the effective address as a derived variable would generate it (§5.4).
   This ablation flips that configuration switch and shows p10 appear. *)

let ablation () =
  header "Ablation: jump effective-address derived variable (fixes p10)";
  let matcher = (Option.get (Properties.Catalog.by_id "p10")).matcher in
  let run jump_ea =
    let config =
      { Trace.Runner.default_config with
        mask_config = { Trace.Record.jump_ea } }
    in
    let engine = Daikon.Engine.create () in
    List.iter
      (fun name ->
         let w = Option.get (Workloads.Suite.by_name name) in
         let machine = Cpu.Machine.create ~tick_period:w.tick_period () in
         Cpu.Machine.load_image machine w.image;
         Cpu.Machine.set_pc machine w.entry;
         ignore (Trace.Runner.run ~config
                   ~observer:(Daikon.Engine.observe engine) machine))
      [ "vmlinux"; "instru"; "mcf" ];
    List.exists matcher (Daikon.Engine.invariants engine)
  in
  pf "p10 (jumps update the PC correctly) generated without EA: %b (paper: no)\n"
    (run false);
  pf "p10 generated with the EA derived variable:              %b (paper's fix)\n"
    (run true)

(* ---- ablation: trace coverage vs. false positives ----

   §3.5: "Increasing test coverage reduces the number of false positives."
   Re-run identification with invariant sets mined from growing corpus
   prefixes and report the clean-run false positives of Table 3. *)

let ablation_coverage () =
  header "Ablation: trace coverage vs. identification false positives (§3.5)";
  let prefixes =
    [ (2, [ "vmlinux"; "basicmath" ]);
      (5, [ "vmlinux"; "basicmath"; "parser"; "mesa"; "ammp" ]);
      (17, Workloads.Suite.names) ]
  in
  pf "%-10s %12s %12s %14s\n" "programs" "invariants" "unique SCI" "clean-run FPs";
  List.iter
    (fun (n, names) ->
       let engine = Daikon.Engine.create () in
       List.iter
         (fun name ->
            let w = Option.get (Workloads.Suite.by_name name) in
            ignore (Trace.Runner.stream ~tick_period:w.Workloads.Rt.tick_period
                      ~entry:w.Workloads.Rt.entry
                      ~observer:(Daikon.Engine.observe engine)
                      w.Workloads.Rt.image))
         names;
       let invariants = Daikon.Engine.invariants engine in
       let summary = Sci.Identify.run_all ~invariants Bugs.Table1.all in
       pf "%-10d %12d %12d %14d\n" n (List.length invariants)
         (List.length summary.Sci.Identify.unique_sci)
         (List.length summary.Sci.Identify.unique_fp))
    prefixes;
  pf "(expected: false positives shrink as coverage grows)\n"

(* ---- ablation: the instruction-integrity derived variables ----

   Bug b11 (wrong instruction fetched after an LSU stall) is caught through
   the IR / MEM_AT_PC / OPCODE derived variables — the ISA-level shadow of
   the paper's "microarchitectural information" extension discussion.
   Remove them from the invariant set and b11's detection collapses. *)

let ablation_instruction_integrity () =
  header "Ablation: instruction-integrity derived variables (IR/MEM_AT_PC/OPCODE)";
  let invariants = Lazy.force optimized_invariants in
  let mentions_integrity (i : Expr.t) =
    List.exists
      (fun id ->
         match Trace.Var.id_base_name id with
         | "IR" | "MEM_AT_PC" | "OPCODE" -> true
         | _ -> false)
      (Expr.vars i)
  in
  let without = List.filter (fun i -> not (mentions_integrity i)) invariants in
  let b11 = Option.get (Bugs.Table1.by_id "b11") in
  let run invs =
    let index = Sci.Checker.index invs in
    let report = Sci.Identify.run ~index b11 in
    (List.length report.Sci.Identify.true_sci, report.Sci.Identify.detected)
  in
  let full_sci, full_detected = run invariants in
  let abl_sci, abl_detected = run without in
  pf "with the derived variables:    %4d SCI, detected %b\n" full_sci full_detected;
  pf "without them:                  %4d SCI, detected %b\n" abl_sci abl_detected;
  pf "(the integrity variables carry %d of b11's SCI; removing the whole\n"
    (full_sci - abl_sci);
  pf " class would reproduce the paper's p12/p18 microarchitectural gap)\n"

(* ---- CSV export of the figure series, for external plotting ---- *)

let export dir =
  header ("Exporting figure data to " ^ dir);
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name emit =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc);
    pf "wrote %s\n" path
  in
  let m = Lazy.force mining in
  write "fig3.csv" (fun oc ->
      output_string oc "program,total,unmodified,new,deleted\n";
      List.iter
        (fun (r : Pipeline.figure3_row) ->
           Printf.fprintf oc "%s,%d,%d,%d,%d\n"
             r.group_label r.total r.unmodified r.fresh r.deleted)
        m.Pipeline.figure3);
  let inf = Lazy.force inference in
  write "fig4.csv" (fun oc ->
      output_string oc "pc1,pc2,class\n";
      List.iter
        (fun (p, cls) ->
           Printf.fprintf oc "%.6f,%.6f,%s\n" p.(0) p.(1)
             (if cls = 1 then "SC" else "nonSC"))
        inf.Pipeline.pca_points);
  let o = Lazy.force optimization in
  write "tab2.csv" (fun oc ->
      output_string oc "stage,invariants,variables\n";
      List.iter
        (fun (s : Invopt.Pipeline.stage_stats) ->
           Printf.fprintf oc "%s,%d,%d\n" s.stage s.invariants s.variables)
        o.Pipeline.result.Invopt.Pipeline.stages);
  let ident = Lazy.force identification in
  write "tab3.csv" (fun oc ->
      output_string oc "bug,true_sci,fp,detected\n";
      List.iter
        (fun (r : Sci.Identify.report) ->
           Printf.fprintf oc "%s,%d,%d,%b\n" r.bug.Bugs.Registry.id
             (List.length r.true_sci) (List.length r.false_positives)
             r.detected)
        ident.Pipeline.summary.Sci.Identify.reports);
  write "tab4.csv" (fun oc ->
      output_string oc "feature,coefficient\n";
      List.iter
        (fun (n, b) -> Printf.fprintf oc "%s,%.6f\n" n b)
        inf.Pipeline.selected_features)

(* ---- sequential vs. sharded mining (the tentpole's speedup check) ---- *)

let parbench () =
  header "Parallel sharded trace mining: sequential vs. domain pool";
  pf "recommended domain count on this machine: %d\n"
    (Util.Parallel.default_jobs ());
  let seq = Pipeline.mine ~jobs:1 () in
  let key m =
    List.map Expr.to_string m.Pipeline.invariants
  in
  let baseline = key seq in
  pf "%-8s %12s %12s %10s %8s\n" "jobs" "invariants" "records" "seconds" "equal";
  pf "%-8d %12d %12d %10.2f %8s\n" 1
    (List.length seq.Pipeline.invariants) seq.Pipeline.record_count
    seq.Pipeline.seconds "-";
  List.iter
    (fun n ->
       let m = Pipeline.mine ~jobs:n () in
       pf "%-8d %12d %12d %10.2f %8b\n" n
         (List.length m.Pipeline.invariants) m.Pipeline.record_count
         m.Pipeline.seconds
         (key m = baseline && m.Pipeline.figure3 = seq.Pipeline.figure3))
    [ 2; 4; max 1 (Util.Parallel.default_jobs ()) ];
  pf "(equal compares the full invariant set and every Figure 3 row;\n";
  pf " wall-clock gains require as many hardware cores as jobs)\n"

(* ---- incremental mining: cold vs. warm snapshot cache ---- *)

(* Filled by cachebench; lands in BENCH_pipeline.json's "cache" block. *)
let cache_result : (string * float) list ref = ref []

let cachebench () =
  header "Incremental mining: cold vs. warm snapshot cache";
  let dir =
    let base = Filename.temp_file "scifinder_cachebench" "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    base
  in
  let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let strings m = List.map Expr.to_string m.Pipeline.invariants in
  let same a b =
    strings a = strings b
    && a.Pipeline.figure3 = b.Pipeline.figure3
    && a.Pipeline.record_count = b.Pipeline.record_count
    && a.Pipeline.mnemonic_coverage = b.Pipeline.mnemonic_coverage
  in
  let cold = Pipeline.mine ~jobs:!jobs ~cache_dir:dir () in
  let warm = Pipeline.mine ~jobs:!jobs ~cache_dir:dir () in
  let speedup = cold.Pipeline.seconds /. Float.max warm.Pipeline.seconds 1e-9 in
  pf "%-28s %12s %12s %10s\n" "run" "invariants" "records" "seconds";
  pf "%-28s %12d %12d %10.2f\n" "cold (empty cache)"
    (List.length cold.Pipeline.invariants) cold.Pipeline.record_count
    cold.Pipeline.seconds;
  pf "%-28s %12d %12d %10.2f\n" "warm (full cache)"
    (List.length warm.Pipeline.invariants) warm.Pipeline.record_count
    warm.Pipeline.seconds;
  let warm_equal = same cold warm in
  pf "warm equals cold (invariant set + Figure 3 rows, bit-identical): %b\n"
    warm_equal;
  pf "warm speedup: %.1fx (acceptance floor: 5x)\n" speedup;
  (* Damage the cache: truncate one shard snapshot and orphan the
     summary — the run must reject both, re-mine the shard, and still
     come back bit-identical. *)
  let stale0 = counter "mine.cache.stale" in
  let victim = Filename.concat dir "pi.snap" in
  let len = (Unix.stat victim).Unix.st_size in
  let fd = Unix.openfile victim [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len / 2);
  Unix.close fd;
  Array.iter
    (fun f ->
       if Filename.check_suffix f ".summary" then
         Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let repaired = Pipeline.mine ~jobs:!jobs ~cache_dir:dir () in
  let stale_seen = counter "mine.cache.stale" - stale0 in
  let repaired_equal = same cold repaired in
  pf "truncated shard rejected and re-mined: %b (stale entries seen: %d)\n"
    repaired_equal stale_seen;
  let pass = warm_equal && repaired_equal && stale_seen > 0 && speedup >= 5.0 in
  pf "cachebench gate (warm==cold, stale rejected, >=5x): %s\n"
    (if pass then "PASS" else "FAIL");
  cache_result :=
    [ ("cold_s", cold.Pipeline.seconds);
      ("warm_s", warm.Pipeline.seconds);
      ("speedup", speedup);
      ("warm_equal", if warm_equal then 1.0 else 0.0);
      ("stale_rejected", if repaired_equal && stale_seen > 0 then 1.0 else 0.0) ];
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* ---- fuzzbench: the generated corpus extends Figure 3 ---- *)

(* Pinned for seed 42 / budget 60: measured +14 coverage points over the
   17 hand-written programs; the gate floor leaves regression headroom. *)
let fuzz_seed = 42
let fuzz_budget = 60
let fuzz_min_new = 10

(* Filled by fuzzbench; lands in BENCH_pipeline.json's "fuzz" block. *)
let fuzz_result : (string * float) list ref = ref []

let fuzzbench () =
  header "Fuzzbench: coverage-guided generated programs extend Figure 3";
  let baseline = Fuzz.Coverage.of_workloads Workloads.Suite.all in
  let grow () =
    Fuzz.Corpus.minimize
      (Fuzz.Corpus.run ~initial:baseline ~seed:fuzz_seed
         ~budget:fuzz_budget ())
  in
  let corpus = grow () in
  (* Same seed, same corpus: the whole loop (images, acceptance order,
     coverage table) must be byte-identical run to run. *)
  let deterministic =
    String.equal (Fuzz.Corpus.fingerprint corpus)
      (Fuzz.Corpus.fingerprint (grow ()))
  in
  let fresh = Fuzz.Coverage.Pset.cardinal (Fuzz.Corpus.new_points corpus) in
  let accepted = List.length corpus.Fuzz.Corpus.entries in
  pf "seed %d, budget %d: %d programs accepted, %d timeouts\n" fuzz_seed
    fuzz_budget accepted corpus.Fuzz.Corpus.timeouts;
  pf "%s" (Fuzz.Coverage.table ~baseline corpus.Fuzz.Corpus.total);
  pf "same-seed rerun byte-identical: %b\n" deterministic;
  (* Extend Figure 3 with the generated programs as an 18th group and
     mine cold then warm through the snapshot cache. *)
  Workloads.Suite.reset_registered ();
  Fuzz.Corpus.register corpus;
  let groups =
    Workloads.Suite.figure3_groups @ [ Fuzz.Corpus.names corpus ]
  in
  let labels = Workloads.Suite.figure3_labels @ [ "fuzz" ] in
  let dir =
    let base = Filename.temp_file "scifinder_fuzzbench" "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    base
  in
  let cold = Pipeline.mine ~jobs:!jobs ~groups ~labels ~cache_dir:dir () in
  let warm = Pipeline.mine ~jobs:!jobs ~groups ~labels ~cache_dir:dir () in
  let strings m = List.map Expr.to_string m.Pipeline.invariants in
  let warm_equal =
    strings cold = strings warm && cold.Pipeline.figure3 = warm.Pipeline.figure3
  in
  pf "%-11s %10s %10s %10s %10s\n" "program" "total" "unmodified" "new"
    "deleted";
  List.iter
    (fun (r : Pipeline.figure3_row) ->
       pf "%-11s %10d %10d %10d %10d\n" r.group_label r.total r.unmodified
         r.fresh r.deleted)
    cold.Pipeline.figure3;
  (* Convergence shape: the Figure 3 claim must keep holding over the
     hand-written prefix (the last hand-written group churns far less
     than the first). The fuzz group itself is EXPECTED to churn hard:
     its programs exercise operand values the hand corpus never reaches,
     which deletes over-fitted invariants — that is the §3.5 coverage
     effect the FP delta below measures. *)
  let churn (r : Pipeline.figure3_row) = r.fresh + r.deleted in
  let shape_ok, first_churn, hand_churn, fuzz_churn =
    match cold.Pipeline.figure3 with
    | first :: rest when List.length rest >= 2 ->
      let n = List.length rest in
      let hand = List.nth rest (n - 2) in
      let fuzz = List.nth rest (n - 1) in
      (churn hand < churn first, churn first, churn hand, churn fuzz)
    | _ -> (false, 0, 0, 0)
  in
  pf "churn first program: %d, last hand-written group: %d (converging: %b)\n"
    first_churn hand_churn shape_ok;
  pf "churn fuzz group: %d (over-fitted invariants retired by coverage)\n"
    fuzz_churn;
  pf "warm rerun equals cold (invariants + Figure 3 rows): %b\n" warm_equal;
  (* SCI / false-positive delta (report only): identify over the mined
     set with and without the generated group. The 17 base shards are
     shared through the same cache directory. *)
  let base = Pipeline.mine ~jobs:!jobs ~cache_dir:dir () in
  let identify m =
    let opt =
      (Pipeline.optimize m.Pipeline.invariants).Pipeline.result
        .Invopt.Pipeline.optimized
    in
    (Pipeline.identify ~invariants:opt Bugs.Table1.all).Pipeline.summary
  in
  let s_base = identify base and s_ext = identify cold in
  let sci s = List.length s.Sci.Identify.unique_sci
  and fp s = List.length s.Sci.Identify.unique_fp in
  pf "identification:   %-10s %8s %8s\n" "corpus" "SCI" "FP";
  pf "                  %-10s %8d %8d\n" "base-17" (sci s_base) (fp s_base);
  pf "                  %-10s %8d %8d  (delta %+d SCI, %+d FP)\n" "with-fuzz"
    (sci s_ext) (fp s_ext)
    (sci s_ext - sci s_base) (fp s_ext - fp s_base);
  let fp_delta = fp s_ext - fp s_base in
  let pass =
    deterministic && fresh >= fuzz_min_new && warm_equal && shape_ok
    && fp_delta <= 0
  in
  pf "fuzzbench gate (new coverage >= %d, deterministic, warm identical, \
      fig3 shape, FP not up): %s\n"
    fuzz_min_new
    (if pass then "PASS" else "FAIL");
  fuzz_result :=
    [ ("seed", float_of_int fuzz_seed);
      ("budget", float_of_int fuzz_budget);
      ("accepted", float_of_int accepted);
      ("new_points", float_of_int fresh);
      ("timeouts", float_of_int corpus.Fuzz.Corpus.timeouts);
      ("deterministic", if deterministic then 1.0 else 0.0);
      ("warm_equal", if warm_equal then 1.0 else 0.0);
      ("first_churn", float_of_int first_churn);
      ("hand_churn", float_of_int hand_churn);
      ("fuzz_churn", float_of_int fuzz_churn);
      ("sci_delta", float_of_int (sci s_ext - sci s_base));
      ("fp_delta", float_of_int fp_delta) ];
  Workloads.Suite.reset_registered ();
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* ---- minebench: the streaming hot path vs the frozen pre-change miner ---- *)

(* Filled by minebench; lands in BENCH_pipeline.json's "minebench" block. *)
let mine_result : (string * float) list ref = ref []

(* Speedup acceptance floor. The measured margin is well above this
   (roughly 3-4x on the reference machine); the floor leaves room for
   run-to-run noise and slower CI hosts. *)
let minebench_floor = 1.5

let minebench () =
  header "Minebench: streaming hot path vs the frozen pre-change miner";
  let corpus = Workloads.Suite.all in
  let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  (* Lane A, the denominator: the pre-change mining loop frozen into this
     harness (Trace_baseline / Engine_baseline) — decode-per-step
     machine, a pre-state copy per branch, hash-keyed boxed-tracker
     engine. Lane B: today's Runner + Engine. Same corpus, same clock. *)
  let run_baseline () =
    let engine = Engine_baseline.create () in
    List.iter
      (fun (w : Workloads.Rt.t) ->
         ignore
           (Trace_baseline.stream ~tick_period:w.tick_period ~entry:w.entry
              ~observer:(Engine_baseline.observe engine) w.image))
      corpus;
    engine
  in
  let run_current () =
    let engine = Daikon.Engine.create () in
    List.iter
      (fun (w : Workloads.Rt.t) ->
         ignore
           (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
              ~observer:(Daikon.Engine.observe engine) w.image))
      corpus;
    engine
  in
  let reps = 3 in
  let best f =
    let best_s = ref infinity and res = ref None in
    for _ = 1 to reps do
      let r, s = Obs.Clock.time f in
      if s < !best_s then best_s := s;
      res := Some r
    done;
    (Option.get !res, !best_s)
  in
  let base_engine, base_s = best run_baseline in
  let hit0 = counter "cpu.decode_cache.hit"
  and miss0 = counter "cpu.decode_cache.miss" in
  let cur_engine, cur_s = best run_current in
  let dc_hits = counter "cpu.decode_cache.hit" - hit0
  and dc_misses = counter "cpu.decode_cache.miss" - miss0 in
  let records = Daikon.Engine.record_count cur_engine in
  let counts_equal =
    records = Engine_baseline.record_count base_engine
    && Daikon.Engine.point_count cur_engine
       = Engine_baseline.point_count base_engine
  in
  (* The frozen and current engines must have falsified exactly the same
     candidate sets — the hot path is a constant-factor change, not a
     semantic one. *)
  let stats_equal =
    Daikon.Engine.candidate_stats cur_engine
    = Engine_baseline.candidate_stats base_engine
  in
  (* State identity through the current code: the streaming lane above
     vs materialize-then-replay through [observe_baseline] must serialize
     to byte-identical SCIFSNAP images (zero-materialization changed the
     plumbing, not the state). A two-shard parallel-style merge must
     extract the identical invariant set; its snapshot bytes are allowed
     to differ only in the dead-pair scale support counts, which a shard
     merge over-counts by design (see [Daikon.Engine.merge_into]). *)
  let enc_stream = Daikon.Engine.encode cur_engine in
  let replay_engine = Daikon.Engine.create () in
  List.iter
    (fun (w : Workloads.Rt.t) ->
       let recs, _ =
         Trace.Runner.capture ~tick_period:w.tick_period ~entry:w.entry
           w.image
       in
       List.iter (Daikon.Engine.observe_baseline replay_engine) recs)
    corpus;
  let enc_replay = Daikon.Engine.encode replay_engine in
  let snap_equal = String.equal enc_stream enc_replay in
  let sharded_equal =
    let half = List.length corpus / 2 in
    let a = Daikon.Engine.create () and b = Daikon.Engine.create () in
    List.iteri
      (fun i (w : Workloads.Rt.t) ->
         let eng = if i < half then a else b in
         ignore
           (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
              ~observer:(Daikon.Engine.observe eng) w.image))
      corpus;
    Daikon.Engine.merge_into a b;
    List.map Expr.to_string (Daikon.Engine.invariants a)
    = List.map Expr.to_string (Daikon.Engine.invariants cur_engine)
  in
  (* And through the pipeline: sequential vs parallel mining must still
     agree on the invariant set and every Figure 3 row, and the final
     invariant set must match what the streaming engine extracts. *)
  let seq = Pipeline.mine ~jobs:1 () in
  let par = Pipeline.mine ~jobs:(max 2 !jobs) () in
  let strings m = List.map Expr.to_string m.Pipeline.invariants in
  let fig3_equal =
    strings seq = strings par && seq.Pipeline.figure3 = par.Pipeline.figure3
  in
  let stream_eq_mine =
    List.map Expr.to_string (Daikon.Engine.invariants cur_engine)
    = strings seq
  in
  let rps_base = float_of_int records /. Float.max base_s 1e-9 in
  let rps_cur = float_of_int records /. Float.max cur_s 1e-9 in
  let speedup = base_s /. Float.max cur_s 1e-9 in
  pf "%-28s %12s %12s %14s\n" "lane (best of 3)" "records" "seconds"
    "records/sec";
  pf "%-28s %12d %12.3f %14.0f\n" "pre-change (frozen copy)" records base_s
    rps_base;
  pf "%-28s %12d %12.3f %14.0f\n" "streaming hot path" records cur_s rps_cur;
  pf "decode cache over the corpus: %d hits, %d misses (%.2f%% hit rate)\n"
    dc_hits dc_misses
    (100.0 *. float_of_int dc_hits
     /. Float.max (float_of_int (dc_hits + dc_misses)) 1.0);
  pf "engine state vs frozen baseline (records, points, candidates): %b\n"
    (counts_equal && stats_equal);
  pf "stream == replay (SCIFSNAP bytes): %b, sharded merge invariants: %b\n"
    snap_equal sharded_equal;
  pf "seq == par mining (invariants + Figure 3 rows): %b, stream == mine: %b\n"
    fig3_equal stream_eq_mine;
  pf "speedup: %.2fx (acceptance floor: %.1fx)\n" speedup minebench_floor;
  let identical =
    counts_equal && stats_equal && snap_equal && sharded_equal && fig3_equal
    && stream_eq_mine
  in
  let pass = identical && speedup >= minebench_floor in
  pf "minebench gate (state identical, stream==replay==sharded, seq==par, \
      >=1.5x): %s\n"
    (if pass then "PASS" else "FAIL");
  mine_result :=
    [ ("records", float_of_int records);
      ("baseline_s", base_s);
      ("current_s", cur_s);
      ("baseline_rps", rps_base);
      ("current_rps", rps_cur);
      ("speedup", speedup);
      ("dcache_hits", float_of_int dc_hits);
      ("dcache_misses", float_of_int dc_misses);
      ("identical", if identical then 1.0 else 0.0) ]

(* ---- mutbench: compiled SCI monitors + the mutant-at-scale campaign ---- *)

(* Filled by mutbench; lands in BENCH_pipeline.json's "mutbench" block. *)
let mut_result : (string * float) list ref = ref []

(* Compiled-vs-interpretive speedup acceptance floor over the full
   corpus. The measured margin is well above this on the reference
   machine; the floor leaves room for run-to-run noise. *)
let mutbench_floor = 2.0
let mutbench_seed = 42
let mutbench_mutants = 200

let mutbench () =
  header "Mutbench: compiled SCI monitors and the mutant campaign";
  let ident = Lazy.force identification in
  let sci = ident.Pipeline.summary.Sci.Identify.unique_sci in
  let battery = Assertions.Ovl.of_invariants sci in
  let compiled = Assertions.Compile.compile battery in
  (* Throughput race over the full 17-workload corpus: the interpretive
     oracle vs the compiled battery, best of 3, one workload's
     materialized trace live at a time. The (assertion, step) firing
     sequences must be identical — same firings, same order. *)
  let corpus = Workloads.Suite.all in
  let reps = 3 in
  let best f =
    let best_s = ref infinity and res = ref None in
    for _ = 1 to reps do
      let r, s = Obs.Clock.time f in
      if s < !best_s then best_s := s;
      res := Some r
    done;
    (Option.get !res, !best_s)
  in
  let total_records = ref 0 in
  let interp_s = ref 0.0 and comp_s = ref 0.0 in
  let identical = ref true in
  List.iter
    (fun (w : Workloads.Rt.t) ->
       let records, _ =
         Trace.Runner.capture ~tick_period:w.tick_period ~entry:w.entry
           w.image
       in
       total_records := !total_records + List.length records;
       let fi, ti = best (fun () -> Assertions.Monitor.run battery records) in
       let fc, tc = best (fun () -> Assertions.Compile.run compiled records) in
       interp_s := !interp_s +. ti;
       comp_s := !comp_s +. tc;
       let key (f : Assertions.Monitor.firing) =
         (f.assertion.Assertions.Ovl.name, f.step)
       in
       if List.map key fi <> List.map key fc then identical := false)
    corpus;
  let speedup = !interp_s /. Float.max !comp_s 1e-9 in
  let eps_i = float_of_int !total_records /. Float.max !interp_s 1e-9 in
  let eps_c = float_of_int !total_records /. Float.max !comp_s 1e-9 in
  pf "%-28s %12s %12s %14s\n" "lane (best of 3)" "records" "seconds"
    "records/sec";
  pf "%-28s %12d %12.3f %14.0f\n" "interpretive oracle" !total_records
    !interp_s eps_i;
  pf "%-28s %12d %12.3f %14.0f\n" "compiled battery" !total_records
    !comp_s eps_c;
  pf "firing sequences identical: %b; speedup: %.2fx (floor: %.1fx)\n"
    !identical speedup mutbench_floor;
  (* Table 1 baseline: the compiled verdict must detect at least every
     bug the interpretive oracle detects. *)
  let table1_interp =
    List.length (List.filter (Experiments.battery_detects battery)
                   Bugs.Table1.all)
  in
  let table1_compiled =
    List.length (List.filter (Experiments.compiled_detects compiled)
                   Bugs.Table1.all)
  in
  pf "Table 1 detection: interpretive %d/17, compiled %d/17\n"
    table1_interp table1_compiled;
  (* The campaign, twice with the same seed: fingerprints must agree. *)
  let camp =
    Pipeline.campaign ~seed:mutbench_seed ~mutants:mutbench_mutants ~sci ()
  in
  let camp2 =
    Pipeline.campaign ~seed:mutbench_seed ~mutants:mutbench_mutants ~sci ()
  in
  let deterministic = String.equal camp.fingerprint camp2.fingerprint in
  pf "\ncampaign: %d/%d mutants detected over %d fuzz triggers \
      (%d clean-firing) in %.1fs\n"
    camp.Pipeline.detected_total camp.mutant_total camp.trigger_count
    camp.fp_trigger_count camp.camp_seconds;
  pf "%-5s %8s %8s %12s %8s\n" "class" "mutants" "detected" "mean-latency"
    "fp-rate";
  List.iter
    (fun (cl : Pipeline.campaign_class) ->
       pf "%-5s %8d %8d %12s %8.2f\n" cl.class_name cl.class_total
         cl.class_detected
         (if Float.is_nan cl.class_mean_latency then "-"
          else Printf.sprintf "%.1f" cl.class_mean_latency)
         cl.class_fp_rate)
    camp.classes;
  pf "deterministic per seed: %b (fingerprint %s)\n" deterministic
    camp.fingerprint;
  let pass =
    !identical && speedup >= mutbench_floor
    && table1_compiled >= table1_interp
    && camp.mutant_total >= 200 && deterministic
  in
  pf "mutbench gate (compiled==interpretive, >=%.0fx, table1 >= baseline, \
      >=200 mutants deterministic): %s\n"
    mutbench_floor (if pass then "PASS" else "FAIL");
  mut_result :=
    [ ("records", float_of_int !total_records);
      ("assertions", float_of_int (List.length battery));
      ("interp_s", !interp_s);
      ("compiled_s", !comp_s);
      ("interp_rps", eps_i);
      ("compiled_rps", eps_c);
      ("speedup", speedup);
      ("identical", if !identical then 1.0 else 0.0);
      ("table1_interp", float_of_int table1_interp);
      ("table1_compiled", float_of_int table1_compiled);
      ("mutants", float_of_int camp.mutant_total);
      ("detected", float_of_int camp.detected_total);
      ("triggers", float_of_int camp.trigger_count);
      ("fp_triggers", float_of_int camp.fp_trigger_count);
      ("deterministic", if deterministic then 1.0 else 0.0);
      ("campaign_s", camp.camp_seconds) ]
    @ List.concat_map
        (fun (cl : Pipeline.campaign_class) ->
           let p = String.lowercase_ascii cl.class_name in
           [ (p ^ "_mutants", float_of_int cl.class_total);
             (p ^ "_detected", float_of_int cl.class_detected);
             (p ^ "_mean_latency",
              if Float.is_nan cl.class_mean_latency then -1.0
              else cl.class_mean_latency);
             (p ^ "_fp_rate", cl.class_fp_rate) ])
        camp.classes

(* ---- lakebench: the on-disk trace lake vs live simulation ---- *)

(* Filled by lakebench; lands in BENCH_pipeline.json's "lakebench" block. *)
let lake_result : (string * float) list ref = ref []

(* Replication factor for the out-of-core lane. Segment blocks are
   self-contained (deltas reset per block), so concatenating a segment
   file with itself N times is a valid segment holding the trace N
   times — a 100x corpus without one extra simulated step. *)
let lakebench_scale = 100

let lakebench () =
  header "Lakebench: replaying the on-disk trace lake vs live simulation";
  (* Already in lake order (sorted segment filenames). *)
  let names = [ "bitcount"; "helloworld"; "pi" ] in
  let corpus =
    List.map (fun n -> Option.get (Workloads.Suite.by_name n)) names
  in
  let mkdtemp tag =
    let base = Filename.temp_file tag "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    base
  in
  let rmdir dir =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let dir = mkdtemp "scifinder_lake1" in
  let scaled = mkdtemp "scifinder_lake100" in
  let cache_dir = mkdtemp "scifinder_lakecache" in
  Fun.protect
    ~finally:(fun () -> rmdir dir; rmdir scaled; rmdir cache_dir)
  @@ fun () ->
  let reps = 3 in
  let best f =
    let best_s = ref infinity and res = ref None in
    for _ = 1 to reps do
      let r, s = Obs.Clock.time f in
      if s < !best_s then best_s := s;
      res := Some r
    done;
    (Option.get !res, !best_s)
  in
  (* Lane A, the denominator: producing the trace by simulation — the
     only way to get records before the lake existed. Both lanes drain
     records through a trivial observer; this measures trace
     production, not mining. *)
  let simulate () =
    List.fold_left
      (fun n (w : Workloads.Rt.t) ->
         let count = ref 0 in
         ignore
           (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
              ~observer:(fun _ -> incr count) w.image);
         n + !count)
      0 corpus
  in
  let sim_records, sim_s = best simulate in
  let sim_rps = float_of_int sim_records /. Float.max sim_s 1e-9 in
  (* Record the 1x lake, then replicate each segment on disk by raw
     byte concatenation. *)
  let stats = Pipeline.record_lake ~names ~dir () in
  let write_rps =
    float_of_int stats.Pipeline.lake_records
    /. Float.max stats.Pipeline.lake_seconds 1e-9
  in
  List.iter
    (fun path ->
       let bytes = Util.Binio.read_file path in
       let out = Filename.concat scaled (Filename.basename path) in
       let oc = open_out_bin out in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () -> for _ = 1 to lakebench_scale do output_string oc bytes done))
    (Trace.Segment.lake_segments dir);
  (* Round-trip exactness, pinned via SCIFSNAP engine bytes: replaying
     the lake must be bit-identical to live simulation of the same
     workload sequence, at 1x and at the full replicated scale. *)
  let live_engine ws =
    let engine = Daikon.Engine.create () in
    List.iter
      (fun (w : Workloads.Rt.t) ->
         ignore
           (Trace.Runner.stream ~tick_period:w.tick_period ~entry:w.entry
              ~observer:(Daikon.Engine.observe engine) w.image))
      ws;
    engine
  in
  let replay_engine d =
    let engine = Daikon.Engine.create () in
    List.iter
      (fun path ->
         ignore
           (Trace.Segment.fold ~init:()
              ~f:(fun () r -> Daikon.Engine.observe engine r) path))
      (Trace.Segment.lake_segments d);
    engine
  in
  let replay_equal =
    String.equal
      (Daikon.Engine.encode (live_engine corpus))
      (Daikon.Engine.encode (replay_engine dir))
  in
  let scaled_equal =
    let repeated =
      List.concat_map (fun w -> List.init lakebench_scale (fun _ -> w)) corpus
    in
    String.equal
      (Daikon.Engine.encode (live_engine repeated))
      (Daikon.Engine.encode (replay_engine scaled))
  in
  (* Lane B: the same drain, out of the scaled lake, one block in
     memory at a time. *)
  let drain_lake () =
    List.fold_left
      (fun n path ->
         let count = ref 0 in
         ignore
           (Trace.Segment.fold ~init:() ~f:(fun () _ -> incr count) path);
         n + !count)
      0 (Trace.Segment.lake_segments scaled)
  in
  let disk_records, disk_s = best drain_lake in
  let disk_rps = float_of_int disk_records /. Float.max disk_s 1e-9 in
  let lake_bytes =
    List.fold_left
      (fun n p -> n + (Unix.stat p).Unix.st_size)
      0 (Trace.Segment.lake_segments scaled)
  in
  (* Lane C: the same drain, sharded into byte-balanced block spans
     across a domain pool, each worker decoding with read-ahead into a
     reused scratch buffer. *)
  let par_jobs = 4 in
  let drain_par () =
    let spans =
      Trace.Segment.shard_spans ~jobs:par_jobs
        (Trace.Segment.lake_segments scaled)
    in
    let counts =
      Util.Parallel.map ~jobs:par_jobs
        (fun (sp : Trace.Segment.span) ->
           let count = ref 0 in
           ignore
             (Trace.Segment.fold_range ~read_ahead:true
                ~scratch:(Trace.Segment.scratch ())
                ~first_block:sp.Trace.Segment.sp_first
                ~last_block:sp.Trace.Segment.sp_last ~init:()
                ~f:(fun () _ -> incr count) sp.Trace.Segment.sp_path);
           !count)
        (Array.of_list spans)
    in
    Array.fold_left ( + ) 0 counts
  in
  let par_records, par_s = best drain_par in
  let par_rps = float_of_int par_records /. Float.max par_s 1e-9 in
  let par_ratio = par_rps /. Float.max disk_rps 1e-9 in
  (* The speedup floor only binds where the hardware can deliver it;
     the byte-identity gates below bind everywhere. *)
  let cores = Util.Parallel.default_jobs () in
  let par_floor = if cores >= 4 then 1.8 else 0.0 in
  (* Sharded replay must be invisible in the engine bytes: a jobs=4
     session mining the scaled lake ends with the same SCIFSNAP digest
     as a jobs=1 session. *)
  let lake_digest ~jobs d =
    let s = Pipeline.Session.create ~jobs () in
    ignore (Pipeline.Session.mine_lake s d);
    Pipeline.Session.engine_digest s
  in
  let par_seq_identical =
    String.equal (lake_digest ~jobs:1 scaled) (lake_digest ~jobs:par_jobs scaled)
  in
  (* The warm-summary cache keys on lake content, not on jobs: a cache
     populated at jobs=1 must hit from a jobs=4 session, with the same
     digest. *)
  let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let cached_digest ~jobs =
    let s = Pipeline.Session.create ~jobs ~cache_dir () in
    ignore (Pipeline.Session.mine_lake s dir);
    Pipeline.Session.engine_digest s
  in
  let cold_digest = cached_digest ~jobs:1 in
  let hits_before = counter "mine.cache.summary_hit" in
  let warm_digest = cached_digest ~jobs:par_jobs in
  let warm_hit = counter "mine.cache.summary_hit" > hits_before in
  let warm_hit_identical = warm_hit && String.equal cold_digest warm_digest in
  (* A torn tail (crash mid-append) must refuse to parse, never yield
     a short garbage read. *)
  let torn_rejected =
    let victim = List.hd (Trace.Segment.lake_segments dir) in
    let bytes = Util.Binio.read_file victim in
    let cut = Filename.concat dir "torn.tmp" in
    let oc = open_out_bin cut in
    output_string oc (String.sub bytes 0 (String.length bytes - 5));
    close_out oc;
    let rejected =
      match
        Trace.Segment.fold ~init:() ~f:(fun () _ -> ()) cut
      with
      | _ -> false
      | exception Trace.Segment.Corrupt_segment _ -> true
    in
    Sys.remove cut;
    rejected
  in
  let scale_ok = disk_records >= 100 * sim_records in
  pf "%-28s %12s %12s %14s\n" "lane (best of 3)" "records" "seconds"
    "records/sec";
  pf "%-28s %12d %12.3f %14.0f\n" "live simulation (1x)" sim_records sim_s
    sim_rps;
  pf "%-28s %12d %12.3f %14.0f\n"
    (Printf.sprintf "lake replay (%dx, disk)" lakebench_scale)
    disk_records disk_s disk_rps;
  pf "%-28s %12d %12.3f %14.0f\n"
    (Printf.sprintf "lake replay (%dx, -j %d)" lakebench_scale par_jobs)
    par_records par_s par_rps;
  pf "lake: %d segments, %d bytes at 1x, %d bytes at %dx \
      (write: %.0f records/sec)\n"
    stats.Pipeline.lake_segments stats.Pipeline.lake_bytes lake_bytes
    lakebench_scale write_rps;
  pf "replay == sim (SCIFSNAP bytes): 1x %b, %dx %b\n" replay_equal
    lakebench_scale scaled_equal;
  pf "parallel replay: %.2fx sequential at -j %d on %d core(s); \
      floor %.1f%s; par digest == seq: %b; warm cache hit across \
      jobs: %b\n"
    par_ratio par_jobs cores par_floor
    (if cores >= 4 then "" else " (waived: <4 cores)")
    par_seq_identical warm_hit_identical;
  pf "corpus scale: %dx (>=100x: %b); disk/sim rps ratio: %.2f; \
      torn tail rejected: %b\n"
    (disk_records / max sim_records 1) scale_ok (disk_rps /. sim_rps)
    torn_rejected;
  let pass =
    replay_equal && scaled_equal && scale_ok && disk_rps >= sim_rps
    && par_records = disk_records && par_seq_identical
    && warm_hit_identical && par_ratio >= par_floor && torn_rejected
  in
  pf "lakebench gate (replay==sim at 1x and %dx, >=100x corpus, \
      disk rps >= sim rps, par digest == seq, warm cache across jobs, \
      par ratio >= floor, torn tail rejected): %s\n"
    lakebench_scale
    (if pass then "PASS" else "FAIL");
  lake_result :=
    [ ("sim_records", float_of_int sim_records);
      ("sim_s", sim_s);
      ("sim_rps", sim_rps);
      ("write_rps", write_rps);
      ("lake_bytes_1x", float_of_int stats.Pipeline.lake_bytes);
      ("lake_bytes", float_of_int lake_bytes);
      ("scale", float_of_int lakebench_scale);
      ("disk_records", float_of_int disk_records);
      ("disk_s", disk_s);
      ("disk_rps", disk_rps);
      ("rps_ratio", disk_rps /. Float.max sim_rps 1e-9);
      ("par_jobs", float_of_int par_jobs);
      ("par_records", float_of_int par_records);
      ("par_s", par_s);
      ("par_rps", par_rps);
      ("par_ratio", par_ratio);
      ("par_floor", par_floor);
      ("par_seq_identical", if par_seq_identical then 1.0 else 0.0);
      ("warm_hit_identical", if warm_hit_identical then 1.0 else 0.0);
      ("identical", if replay_equal && scaled_equal then 1.0 else 0.0);
      ("torn_rejected", if torn_rejected then 1.0 else 0.0) ]

(* ---- servebench: the mining service under concurrent clients ---- *)

let serve_result : (string * float) list ref = ref []

(* Hundreds of synthetic clients against an in-process server on a Unix
   socket. Three phases: sustained throughput (every client mines into
   its own session; gate: records/sec >= 0.8x a direct batch mine of the
   same multiset on the same worker count), backpressure (64 pipelined
   requests against an inflight window of 4: overflow comes back as
   explicit busy, nothing is dropped), and serve == batch determinism
   (session digest over the socket == sequential Pipeline.Session). *)
let servebench_clients = 220

let servebench () =
  header "Servebench: the mining service under concurrent synthetic clients";
  let sockdir =
    let base = Filename.temp_file "scifinder_servebench" "" in
    Sys.remove base;
    Unix.mkdir base 0o755;
    base
  in
  let sock = Filename.concat sockdir "bench.sock" in
  let cfg =
    { Serve.Server.listen = Serve.Server.Unix_sock sock;
      jobs = !jobs; max_inflight = 4; idle_timeout = 0.;
      cache_dir = None; mine_jobs = 1 }
  in
  let srv = Serve.Server.create cfg in
  let srv_domain = Domain.spawn (fun () -> Serve.Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
        Serve.Server.stop srv;
        Domain.join srv_domain;
        (try Sys.remove sock with Sys_error _ -> ());
        try Unix.rmdir sockdir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rotation = [| "pi"; "helloworld"; "bitcount" |] in
  let workload_of i = rotation.(i mod Array.length rotation) in
  (* Phase 1: throughput. Connect everyone up front, then time the
     burst: one quick-mine per client, each into its own session, all
     inflight at once; responses drained afterwards (they sit in socket
     buffers, so drain order does not serialise the server). *)
  let conns =
    Array.init servebench_clients (fun _ -> Serve.Client.connect_unix sock)
  in
  let served = ref 0 in
  let (), serve_s =
    Obs.Clock.time (fun () ->
        let ids =
          Array.mapi
            (fun i c ->
               Serve.Client.send c ~session:(Printf.sprintf "c%d" i)
                 (Serve.Proto.Mine
                    { source = Serve.Proto.Names [ workload_of i ];
                      label = None; row = false; digest = false }))
            conns
        in
        Array.iteri
          (fun i c ->
             match Serve.Client.recv_id c ids.(i) with
             | Serve.Proto.Mined { records; _ } -> served := !served + records
             | r ->
               Printf.eprintf "servebench client %d: %s\n" i
                 (Serve.Proto.encode_response r))
          conns)
  in
  Array.iter Serve.Client.close conns;
  let serve_rps = float_of_int !served /. Float.max serve_s 1e-9 in
  (* The batch denominator: the same per-client work (one fresh session
     engine each, quick absorption) done directly on the same worker
     count — so the ratio isolates the serving tax (protocol, scheduler,
     select loop), not a different mining shape. *)
  let multiset =
    Array.init servebench_clients (fun i ->
        Option.get (Workloads.Suite.by_name (workload_of i)))
  in
  let batch_records = ref 0 in
  let (), batch_s =
    Obs.Clock.time (fun () ->
        let counts =
          Util.Parallel.map ~jobs:!jobs
            (fun w ->
               let s = Pipeline.Session.create () in
               (Pipeline.Session.mine s ~row:false [ w ])
                 .Pipeline.Session.o_records)
            multiset
        in
        batch_records := Array.fold_left ( + ) 0 counts)
  in
  let batch_rps = float_of_int !batch_records /. Float.max batch_s 1e-9 in
  let rps_ratio = serve_rps /. Float.max batch_rps 1e-9 in
  (* Job latency distribution, straight from the server's histogram
     (same process). *)
  let h = Obs.Metrics.histogram ~unit:"ns" "serve.job.total_ns" in
  let p99_job_ms =
    float_of_int (Obs.Metrics.histogram_percentile h 0.99) /. 1e6
  in
  let p50_job_ms =
    float_of_int (Obs.Metrics.histogram_percentile h 0.5) /. 1e6
  in
  (* Phase 2: backpressure. One session, 64 requests in one burst
     against a window of 4: every overflow is an explicit busy, and
     mined + busy accounts for every request. *)
  let c = Serve.Client.connect_unix sock in
  let mined = ref 0 and busy = ref 0 in
  let burst = 64 in
  let ids =
    List.init burst (fun _ ->
        Serve.Client.send c ~session:"bp"
          (Serve.Proto.Mine
             { source = Serve.Proto.Names [ "pi" ]; label = None;
               row = false; digest = false }))
  in
  List.iter
    (fun id ->
       match Serve.Client.recv_id c id with
       | Serve.Proto.Mined _ -> incr mined
       | Serve.Proto.Busy _ -> incr busy
       | _ -> ())
    ids;
  Serve.Client.close c;
  let accounted = !mined + !busy = burst in
  (* Phase 3: determinism over the socket vs the sequential Session. *)
  let det_names = [ "pi"; "helloworld"; "bitcount" ] in
  let c = Serve.Client.connect_unix sock in
  let served_digest = ref None in
  List.iteri
    (fun i n ->
       match
         Serve.Client.call c ~session:"det"
           (Serve.Proto.Mine
              { source = Serve.Proto.Names [ n ]; label = Some n;
                row = true; digest = (i = List.length det_names - 1) })
       with
       | Serve.Proto.Mined { digest = Some d; _ } -> served_digest := Some d
       | _ -> ())
    det_names;
  Serve.Client.close c;
  let s = Pipeline.Session.create () in
  List.iter
    (fun n ->
       ignore
         (Pipeline.Session.mine s ~label:n
            [ Option.get (Workloads.Suite.by_name n) ]))
    det_names;
  let identical = !served_digest = Some (Pipeline.Session.engine_digest s) in
  pf "%-32s %12s %12s %14s\n" "lane" "records" "seconds" "records/sec";
  pf "%-32s %12d %12.3f %14.0f\n"
    (Printf.sprintf "serve (%d clients, %d workers)" servebench_clients !jobs)
    !served serve_s serve_rps;
  pf "%-32s %12d %12.3f %14.0f\n"
    (Printf.sprintf "batch mine (jobs=%d)" !jobs)
    !batch_records batch_s batch_rps;
  pf "serve/batch rps ratio: %.2f; job latency p50 %.1f ms, p99 %.1f ms\n"
    rps_ratio p50_job_ms p99_job_ms;
  pf "backpressure: %d mined + %d busy of %d pipelined (window 4, \
      all accounted: %b)\n"
    !mined !busy burst accounted;
  pf "serve == batch engine digest: %b\n" identical;
  let pass =
    servebench_clients >= 200 && rps_ratio >= 0.8 && p99_job_ms > 0.
    && !busy >= 1 && accounted && identical
  in
  pf "servebench gate (>=200 clients, rps >= 0.8x batch, p99 recorded, \
      busy backpressure, serve==batch): %s\n"
    (if pass then "PASS" else "FAIL");
  serve_result :=
    [ ("clients", float_of_int servebench_clients);
      ("served_records", float_of_int !served);
      ("serve_s", serve_s);
      ("serve_rps", serve_rps);
      ("batch_rps", batch_rps);
      ("rps_ratio", rps_ratio);
      ("p50_job_ms", p50_job_ms);
      ("p99_job_ms", p99_job_ms);
      ("busy", float_of_int !busy);
      ("identical", if identical then 1.0 else 0.0) ]

(* ---- telemetry overhead: the tentpole's < 2% null-sink budget ---- *)

let obsbench () =
  header "Telemetry overhead: instrumented mining under the null sink";
  let names = [ "pi"; "bitcount"; "helloworld" ] in
  let reps = 3 in
  let time_mine () =
    let best = ref infinity in
    for _ = 1 to reps do
      let _, s =
        Obs.Clock.time (fun () -> Pipeline.mine_invariants ~jobs:2 ~names ())
      in
      if s < !best then best := s
    done;
    !best
  in
  Obs.Sink.set_global Obs.Sink.null;
  let t_null = time_mine () in
  let tmp = Filename.temp_file "scifinder_obsbench" ".jsonl" in
  let sink = Obs.Sink.jsonl tmp in
  Obs.Sink.set_global sink;
  let t_jsonl = time_mine () in
  Obs.Sink.set_global Obs.Sink.null;
  Obs.Sink.close sink;
  (try Sys.remove tmp with Sys_error _ -> ());
  (* Primitive costs under the null sink, then an estimate of what the
     instrumentation adds to one mine_invariants run: one pipeline span,
     one span per workload shard, and a few dozen counter/gauge updates
     (everything else is read at extraction time, off the hot path). *)
  let span_iters = 100_000 in
  let (), span_total =
    Obs.Clock.time (fun () ->
        for _ = 1 to span_iters do
          Obs.Span.with_ ~name:"obsbench.probe" (fun () -> ())
        done)
  in
  let span_ns = span_total *. 1e9 /. float_of_int span_iters in
  let ctr = Obs.Metrics.counter "obsbench.probe" in
  let ctr_iters = 1_000_000 in
  let (), ctr_total =
    Obs.Clock.time (fun () ->
        for _ = 1 to ctr_iters do Obs.Metrics.incr ctr done)
  in
  let ctr_ns = ctr_total *. 1e9 /. float_of_int ctr_iters in
  let spans_per_run = 1 + List.length names in
  let counter_ops_per_run = 64 in
  let est_pct =
    100.0
    *. (float_of_int spans_per_run *. span_ns
        +. float_of_int counter_ops_per_run *. ctr_ns)
    /. (t_null *. 1e9)
  in
  let jsonl_pct = 100.0 *. (t_jsonl -. t_null) /. t_null in
  pf "mine_invariants (%d workloads, 2 shards), best of %d:\n"
    (List.length names) reps;
  pf "  null sink:  %8.3f s\n" t_null;
  pf "  JSONL sink: %8.3f s  (%+.2f%% vs null; includes run-to-run noise)\n"
    t_jsonl jsonl_pct;
  pf "primitive costs under the null sink:\n";
  pf "  span open/close: %6.0f ns    counter update: %6.1f ns\n"
    span_ns ctr_ns;
  pf "instrumentation in one mine run: %d spans + ~%d counter updates\n"
    spans_per_run counter_ops_per_run;
  pf "  -> estimated null-sink overhead: %.4f%% of %.3f s\n" est_pct t_null;
  pf "null-sink overhead budget < 2%%: %s\n"
    (if est_pct < 2.0 then "PASS" else "FAIL");
  overhead_result :=
    [ ("mine_null_s", t_null);
      ("mine_jsonl_s", t_jsonl);
      ("jsonl_delta_pct", jsonl_pct);
      ("span_ns", span_ns);
      ("counter_ns", ctr_ns);
      ("est_null_overhead_pct", est_pct) ]

(* ---- Bechamel micro-benchmarks: one kernel per table/figure ---- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  (* Small prepared inputs so staging stays cheap. *)
  let w = Option.get (Workloads.Suite.by_name "basicmath") in
  let mined =
    let engine = Daikon.Engine.create () in
    ignore (Trace.Runner.stream ~tick_period:0 ~entry:w.entry
              ~observer:(Daikon.Engine.observe engine) w.image);
    Daikon.Engine.invariants engine
  in
  let b10 = Option.get (Bugs.Table1.by_id "b10") in
  let trigger_trace = Sci.Identify.capture_trigger ~fault:b10.fault b10.trigger in
  let index = Sci.Checker.index mined in
  let space = Invariant.Feature.build_space mined in
  let sample = List.filteri (fun i _ -> i < 400) mined in
  let x =
    Ml.Matrix.of_rows (List.map (Invariant.Feature.vector space) sample)
  in
  let y =
    Array.init (List.length sample) (fun i -> if i land 1 = 0 then 1.0 else 0.0)
  in
  let battery =
    Assertions.Ovl.of_invariants (List.filteri (fun i _ -> i < 64) mined)
  in
  let reduced =
    Ml.Matrix.of_rows
      (List.map (fun row -> Array.sub row 0 (min 24 (Array.length row)))
         (List.map (Invariant.Feature.vector space) sample))
  in
  let cov = Lazy.force coverage in
  ignore cov;
  let tests =
    [ Test.make ~name:"fig3.trace-and-mine" (Staged.stage (fun () ->
          let engine = Daikon.Engine.create () in
          ignore (Trace.Runner.stream ~tick_period:0 ~entry:w.entry
                    ~observer:(Daikon.Engine.observe engine) w.image)));
      Test.make ~name:"tab2.optimizer" (Staged.stage (fun () ->
          ignore (Invopt.Pipeline.optimize sample)));
      Test.make ~name:"tab3.violation-check" (Staged.stage (fun () ->
          ignore (Sci.Checker.violations index trigger_trace)));
      Test.make ~name:"tab4.elastic-net-fit" (Staged.stage (fun () ->
          ignore (Ml.Logreg.fit ~alpha:0.5 ~lambda:0.05 x y)));
      Test.make ~name:"fig4.pca-fit" (Staged.stage (fun () ->
          ignore (Ml.Pca.fit ~k:2 reduced)));
      Test.make ~name:"tab5.predict-invariant" (Staged.stage (fun () ->
          let model = Ml.Logreg.fit ~alpha:0.5 ~lambda:0.05 x y in
          ignore model));
      Test.make ~name:"tab6.property-matchers" (Staged.stage (fun () ->
          List.iter
            (fun (p : Properties.Catalog.t) ->
               ignore (List.exists p.matcher sample))
            Properties.Catalog.catalog));
      Test.make ~name:"tab8.trigger-capture" (Staged.stage (fun () ->
          ignore (Sci.Identify.capture_trigger b10.trigger)));
      Test.make ~name:"tab9.cost-model" (Staged.stage (fun () ->
          ignore (Assertions.Cost.battery_overhead battery)));
      Test.make ~name:"sec56.assertion-monitor" (Staged.stage (fun () ->
          ignore (Assertions.Monitor.run battery trigger_trace)));
    ]
  in
  let grouped = Test.make_grouped ~name:"scifinder" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  header "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
       match Analyze.OLS.estimates ols_result with
       | Some [ est ] -> pf "%-35s %14.0f ns/run\n" name est
       | Some _ | None -> pf "%-35s %14s\n" name "n/a")
    (List.sort compare rows)

(* ---- BENCH_pipeline.json: the machine-readable perf trajectory ---- *)

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let write_bench_json () =
  let b = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  bpf "  \"schema\": \"scifinder.bench/1\",\n";
  bpf "  \"jobs\": %d,\n" !jobs;
  bpf "  \"experiments\": [";
  List.iteri
    (fun i (id, secs) ->
       bpf "%s\n    { \"id\": %s, \"seconds\": %s }"
         (if i = 0 then "" else ",") (json_str id) (json_float secs))
    (List.rev !experiment_seconds);
  bpf "\n  ]";
  (* Mining throughput and the invariant-count peak, but only if this run
     actually mined the corpus (forcing it here would make every cheap
     experiment pay the full mining bill). *)
  if Lazy.is_val mining then begin
    let m = Lazy.force mining in
    let peak =
      List.fold_left
        (fun acc (r : Pipeline.figure3_row) -> max acc r.total)
        0 m.Pipeline.figure3
    in
    let rps =
      if m.Pipeline.seconds > 0.0 then
        float_of_int m.Pipeline.record_count /. m.Pipeline.seconds
      else 0.0
    in
    bpf ",\n  \"mining\": {\n";
    bpf "    \"records\": %d,\n" m.Pipeline.record_count;
    bpf "    \"seconds\": %s,\n" (json_float m.Pipeline.seconds);
    bpf "    \"records_per_sec\": %s,\n" (json_float rps);
    bpf "    \"peak_invariants\": %d\n" peak;
    bpf "  }"
  end;
  if !overhead_result <> [] then begin
    bpf ",\n  \"overhead\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !overhead_result;
    bpf "\n  }"
  end;
  if !cache_result <> [] then begin
    bpf ",\n  \"cache\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !cache_result;
    bpf "\n  }"
  end;
  if !fuzz_result <> [] then begin
    bpf ",\n  \"fuzz\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !fuzz_result;
    bpf "\n  }"
  end;
  if !mine_result <> [] then begin
    bpf ",\n  \"minebench\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !mine_result;
    bpf "\n  }"
  end;
  if !mut_result <> [] then begin
    bpf ",\n  \"mutbench\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !mut_result;
    bpf "\n  }"
  end;
  if !lake_result <> [] then begin
    bpf ",\n  \"lakebench\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !lake_result;
    bpf "\n  }"
  end;
  if !serve_result <> [] then begin
    bpf ",\n  \"servebench\": {";
    List.iteri
      (fun i (k, v) ->
         bpf "%s\n    %s: %s" (if i = 0 then "" else ",")
           (json_str k) (json_float v))
      !serve_result;
    bpf "\n  }"
  end;
  bpf "\n}\n";
  let oc = open_out "BENCH_pipeline.json" in
  Fun.protect ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b);
  pf "\nwrote BENCH_pipeline.json\n"

(* Minimal CLI: optional "-j N" and "--metrics[=FILE]" (anywhere) plus
   the positional experiment id and its optional argument (export's
   directory). *)

let metrics_path : string option ref = ref None

let parse_argv () =
  let positional = ref [] in
  let rec go i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "-j" | "--jobs" ->
        if i + 1 >= Array.length Sys.argv then begin
          prerr_endline "-j needs a count"; exit 1
        end;
        (match int_of_string_opt Sys.argv.(i + 1) with
         | Some n when n >= 1 -> jobs := n; go (i + 2)
         | Some _ | None ->
           prerr_endline ("bad job count: " ^ Sys.argv.(i + 1)); exit 1)
      | "--metrics" ->
        metrics_path := Some "BENCH_metrics.jsonl"; go (i + 1)
      | arg
        when String.length arg > String.length "--metrics="
             && String.sub arg 0 (String.length "--metrics=") = "--metrics=" ->
        let off = String.length "--metrics=" in
        metrics_path := Some (String.sub arg off (String.length arg - off));
        go (i + 1)
      | arg -> positional := arg :: !positional; go (i + 1)
  in
  go 1;
  List.rev !positional

let setup_metrics () =
  match !metrics_path with
  | None -> ()
  | Some path ->
    let sink = Obs.Sink.jsonl path in
    Obs.Sink.set_global sink;
    at_exit (fun () ->
        Obs.Metrics.emit_all sink;
        Obs.Sink.set_global Obs.Sink.null;
        Obs.Sink.close sink)

let timed id f =
  let (), secs = Obs.Clock.time f in
  experiment_seconds := (id, secs) :: !experiment_seconds

let all_order =
  [ "fig3"; "tab2"; "tab3"; "tab4"; "fig4"; "tab5"; "tab6"; "tab7";
    "sec56"; "tab8"; "tab9"; "ablation"; "ablation-coverage";
    "ablation-integrity" ]

let () =
  let positional = parse_argv () in
  setup_metrics ();
  let second default = match positional with _ :: d :: _ -> d | _ -> default in
  let dispatch id =
    match id with
    | "fig3" -> timed id fig3
    | "tab2" -> timed id tab2
    | "tab3" -> timed id tab3
    | "tab4" -> timed id tab4
    | "fig4" -> timed id fig4
    | "tab5" -> timed id tab5
    | "tab6" -> timed id tab6
    | "tab7" -> timed id tab7
    | "tab8" -> timed id tab8
    | "tab9" -> timed id tab9
    | "sec56" -> timed id sec56
    | "ablation" -> timed id ablation
    | "ablation-coverage" -> timed id ablation_coverage
    | "ablation-integrity" -> timed id ablation_instruction_integrity
    | "parbench" -> timed id parbench
    | "obsbench" -> timed id obsbench
    | "cachebench" -> timed id cachebench
    | "fuzzbench" -> timed id fuzzbench
    | "minebench" -> timed id minebench
    | "mutbench" -> timed id mutbench
    | "lakebench" -> timed id lakebench
    | "servebench" -> timed id servebench
    | "export" -> timed id (fun () -> export (second "bench_data"))
    | "bechamel" -> timed id bechamel
    | other ->
      prerr_endline ("unknown experiment: " ^ other);
      exit 1
  in
  (match (match positional with e :: _ -> e | [] -> "all") with
   | "all" -> List.iter dispatch all_order
   | id -> dispatch id);
  write_bench_json ()
