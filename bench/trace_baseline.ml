(* Frozen copy of the trace runner as it stood before the streaming
   hot-path work: one heap-allocated pre-state copy per branch record and
   a machine that re-decodes every fetched word ([~decode_cache:false]).
   Used only by the minebench experiment, as the denominator of the
   speedup gate — so the "pre-change baseline" is measured by this same
   harness instead of trusting historical numbers. Behaviour (the record
   stream) is identical to [Trace.Runner]; only the constant factors
   differ. *)

module M = Cpu.Machine
module Var = Trace.Var
module Record = Trace.Record
module Sr = Isa.Spr.Sr_bits

type config = Trace.Runner.config = {
  mask_config : Record.mask_config;
  max_steps : int;
}

let default_config = Trace.Runner.default_config

type outcome = [ `Halted of M.halt_reason | `Max_steps ]

let snapshot_duals machine dst off =
  let set d v = dst.(off + Var.dual_index d) <- v in
  for i = 0 to 31 do set (Var.Gpr i) machine.M.gpr.(i) done;
  let sr = machine.M.sr in
  set Var.Sr_full sr;
  set Var.Sf (Sr.get sr Sr.f);
  set Var.Sm (Sr.get sr Sr.sm);
  set Var.Cy (Sr.get sr Sr.cy);
  set Var.Ov (Sr.get sr Sr.ov);
  set Var.Dsx (Sr.get sr Sr.dsx);
  set Var.Tee (Sr.get sr Sr.tee);
  set Var.Iee (Sr.get sr Sr.iee);
  set Var.Epcr machine.M.epcr;
  set Var.Esr machine.M.esr;
  set Var.Eear machine.M.eear;
  set Var.Machi machine.M.machi;
  set Var.Maclo machine.M.maclo

let set_pc_triplet dst off addr =
  dst.(off + Var.dual_index Var.Pc) <- addr land 0xFFFF_FFFF;
  dst.(off + Var.dual_index Var.Npc) <- (addr + 4) land 0xFFFF_FFFF;
  dst.(off + Var.dual_index Var.Nnpc) <- (addr + 8) land 0xFFFF_FFFF

let build_record ~machine ~mask_table ~config ~pre ~head_ev ~exn_ev =
  let values = Array.make Var.total 0 in
  Array.blit pre 0 values 0 Var.dual_count;
  snapshot_duals machine values Var.dual_count;
  set_pc_triplet values 0 head_ev.M.ev_addr;
  set_pc_triplet values Var.dual_count exn_ev.M.ev_next_pc;
  let insn = head_ev.M.ev_insn in
  let point =
    if head_ev.M.ev_illegal then "illegal" else Isa.Insn.mnemonic insn
  in
  let mask = Record.mask_for mask_table config point insn in
  let seti v x = values.(Var.insn_id v) <- x in
  seti Var.Ir head_ev.M.ev_ir;
  seti Var.Mem_at_pc head_ev.M.ev_mem_at_pc;
  (match Isa.Insn.immediate insn with
   | Some im -> seti Var.Im im
   | None -> ());
  (match Isa.Insn.dest_reg insn with
   | Some rd -> seti Var.Regd rd
   | None -> ());
  let ra, rb = Isa.Insn.src_regs insn in
  (match ra with Some r -> seti Var.Rega r | None -> ());
  (match rb with Some r -> seti Var.Regb r | None -> ());
  seti Var.Opa head_ev.M.ev_opa;
  seti Var.Opb head_ev.M.ev_opb;
  seti Var.Dest head_ev.M.ev_dest;
  seti Var.Ea head_ev.M.ev_ea;
  seti Var.Membus head_ev.M.ev_membus;
  seti Var.Spr_orig head_ev.M.ev_spr_orig;
  seti Var.Spr_post head_ev.M.ev_spr_post;
  seti Var.Opcode (head_ev.M.ev_ir lsr 26);
  (match insn with
   | Isa.Insn.Load (_, _, _, off) | Isa.Insn.Store (_, off, _, _) ->
     seti Var.Ea_ref (Util.U32.add head_ev.M.ev_opa (Util.U32.sext16 off))
   | _ -> ());
  (match insn with
   | Isa.Insn.Load (Isa.Insn.Lbs, _, _, _) ->
     seti Var.Ext_sign ((head_ev.M.ev_membus lsr 7) land 1);
     seti Var.Ext_hi (head_ev.M.ev_dest lsr 8)
   | Isa.Insn.Load (Isa.Insn.Lhs, _, _, _) ->
     seti Var.Ext_sign ((head_ev.M.ev_membus lsr 15) land 1);
     seti Var.Ext_hi (head_ev.M.ev_dest lsr 16)
   | _ -> ());
  let post_dsx = values.(Var.dual_count + Var.dual_index Var.Dsx) in
  (match exn_ev.M.ev_exn with
   | Some _ ->
     seti Var.Exn 1;
     seti Var.Vec exn_ev.M.ev_next_pc;
     seti Var.Epcr_d
       (Util.U32.sub machine.M.epcr head_ev.M.ev_addr);
     let expected_dsx = if exn_ev.M.ev_in_delay_slot then 1 else 0 in
     seti Var.Dsx_ok (if post_dsx = expected_dsx then 1 else 0)
   | None ->
     seti Var.Exn 0;
     seti Var.Vec 0;
     seti Var.Epcr_d 0;
     seti Var.Dsx_ok 1);
  (match insn with
   | Isa.Insn.Setflag _ | Isa.Insn.Setflagi _ ->
     let a = head_ev.M.ev_opa and b = head_ev.M.ev_opb in
     let du = Util.U32.signed (Util.U32.sub a b) in
     let ds = Util.U32.signed a - Util.U32.signed b in
     let sf = values.(Var.dual_count + Var.dual_index Var.Sf) in
     let sign = 1 - (2 * sf) in
     seti Var.Cmpdiff_u du;
     seti Var.Cmpdiff_s ds;
     seti Var.Prod_u (du * sign);
     seti Var.Prod_s (ds * sign);
     seti Var.Cmpz (if du = 0 then 1 else 0)
   | _ -> ());
  Array.iteri (fun id applicable -> if not applicable then values.(id) <- 0) mask;
  { Record.point; values; mask }

(* The pre-change run loop: a fresh [Array.copy] of the pre-state for
   every pending branch and every exceptional delay slot. *)
let run ?(config = default_config) ~observer machine : outcome =
  let mask_table = Record.create_mask_table () in
  let mask_config = config.mask_config in
  let pre = Array.make Var.dual_count 0 in
  let pending : (int array * M.event) option ref = ref None in
  let emit ~pre ~head_ev ~exn_ev =
    observer (build_record ~machine ~mask_table ~config:mask_config
                ~pre ~head_ev ~exn_ev)
  in
  let rec loop steps =
    if steps >= config.max_steps then begin
      (match !pending with
       | Some (pre_b, ev_b) -> emit ~pre:pre_b ~head_ev:ev_b ~exn_ev:ev_b
       | None -> ());
      machine.M.tel.M.truncated <- machine.M.tel.M.truncated + 1;
      `Max_steps
    end else begin
      snapshot_duals machine pre 0;
      match M.step machine with
      | M.Halt reason ->
        (match !pending with
         | Some (pre_b, ev_b) -> emit ~pre:pre_b ~head_ev:ev_b ~exn_ev:ev_b
         | None -> ());
        `Halted reason
      | M.Retired ev ->
        (match !pending with
         | Some (pre_b, ev_b) ->
           pending := None;
           emit ~pre:pre_b ~head_ev:ev_b ~exn_ev:ev;
           if ev.M.ev_exn <> None || ev.M.ev_exn_suppressed then begin
             let pre_ds = Array.copy pre in
             set_pc_triplet pre_ds 0 ev.M.ev_addr;
             emit ~pre:pre_ds ~head_ev:ev ~exn_ev:ev
           end;
           loop (steps + 1)
         | None ->
           if Isa.Insn.has_delay_slot ev.M.ev_insn && ev.M.ev_exn = None then begin
             pending := Some (Array.copy pre, ev);
             loop (steps + 1)
           end else begin
             emit ~pre ~head_ev:ev ~exn_ev:ev;
             loop (steps + 1)
           end)
    end
  in
  loop 0

let stream ?(config = default_config) ?(fault = Cpu.Fault.none)
    ?(tick_period = 0) ~entry ~observer image =
  let machine = M.create ~fault ~tick_period ~decode_cache:false () in
  M.load_image machine image;
  M.set_pc machine entry;
  run ~config ~observer machine
